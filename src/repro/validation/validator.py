"""MCMC validation of optimizations (Section 4, Equations 13-15).

The validator searches the *input* space of a (target, rewrite) pair for
the test case that maximizes their ULP error ``err(R; T, t)``.  By
Theorem 1, in the limit the chain samples test cases in proportion to the
error value, so the maximum is found — and found more often than any
other value.  Termination uses the Geweke mixing diagnostic: once the
chain of observed errors looks stationary, the largest sample is reported
as the bound on the optimization's rounding error.

This is *validation*, not verification: the bound comes with an
asymptotic guarantee and strong evidence, not a proof.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.x86.checkpoint import union_writes
from repro.x86.memory import Memory
from repro.x86.program import Program
from repro.x86.state import MachineState
from repro.x86.testcase import TestCase

from repro.core.cost import location_ulp_distance
from repro.core.runner import Location, Runner
from repro.validation.geweke import geweke_z
from repro.validation.proposals import TestCaseProposer
from repro.validation.strategies import ValidationMcmc, ValidationStrategy

# err(R;T,t) contribution of divergent signal behaviour: ">eta" for every
# eta (Equation 13) — larger than any representable ULP distance.
SIGNAL_ERR = 2.0 ** 80


@dataclass(frozen=True)
class ValidationConfig:
    """Knobs of one validation run (paper defaults, scaled down)."""

    eta: float = 0.0
    max_proposals: int = 50_000
    min_samples: int = 2_000
    check_interval: int = 1_000
    z_threshold: float = 1.96
    sigma_fraction: float = 0.05
    seed: int = 0
    trace_points: int = 64
    keep_chain: bool = False
    # Upper bound on the speculative evaluation block (see
    # :meth:`Validator.validate`).  1 disables speculation and evaluates
    # one proposal per executor call, exactly as the scalar chain did.
    # None (the default) speculates only for strategies whose proposals
    # are independent of the chain state (``uniform_proposals``), where
    # blocking provably cannot change the realized sample stream; chain
    # strategies stay scalar unless a block size is set explicitly,
    # because their realized path (same chain law, different draws)
    # depends on the block size.
    max_block: Optional[int] = None


# Block size used when max_block is None and the strategy's proposals
# are chain-independent (pure batching, bit-identical results).
DEFAULT_UNIFORM_BLOCK = 64


@dataclass
class ValidationResult:
    """Outcome of a validation run."""

    max_err: float
    argmax: Optional[TestCase]
    samples: int
    converged: bool
    passed: bool
    z_scores: List[Tuple[int, float]] = field(default_factory=list)
    trace: List[Tuple[int, float]] = field(default_factory=list)
    # Log-compressed error chain, kept when config.keep_chain is set
    # (used by the multi-chain R-hat diagnostic).
    chain: Optional[List[float]] = None
    # Speculative-block accounting: proposals actually executed vs.
    # executed-but-discarded (drawn after an accept invalidated the rest
    # of their block, or after the Geweke break).
    evaluations: int = 0
    wasted: int = 0

    def to_dict(self) -> dict:
        """Versioned JSON-safe document (see :mod:`repro.core.serialize`)."""
        from repro.core.serialize import validation_result_to_dict

        return validation_result_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict, segments=()) -> "ValidationResult":
        from repro.core.serialize import validation_result_from_dict

        return validation_result_from_dict(data, segments)


@dataclass
class ValidationCheckpoint:
    """Exact mid-chain state of one validation run.

    Captured at speculative-block boundaries, where the chain state is
    consistent; resuming reproduces the uninterrupted run's sample
    stream bit-for-bit (the RNG state, the chain's current point, and
    the EWMA block-sizing state are all part of the capture).  Test
    cases serialize as live-in bits only — memory segments are
    reconstructed from the validator's base test case on resume.
    """

    iteration: int
    rng_state: tuple
    current_inputs: dict
    current_err: float
    max_err: float
    argmax_inputs: Optional[dict]
    chain: List[float]
    z_scores: List[Tuple[int, float]]
    trace: List[Tuple[int, float]]
    evaluations: int
    accept_rate: float
    # Config echo checked by resume.
    seed: int = 0
    max_proposals: int = 0

    def to_dict(self) -> dict:
        from repro.core import serialize as S

        return {
            "version": S.SCHEMA_VERSION,
            "kind": "validation_checkpoint",
            "iteration": self.iteration,
            "rng_state": S.enc_rng_state(self.rng_state),
            "current_inputs": {k: v for k, v in self.current_inputs.items()},
            "current_err": S.enc_float(self.current_err),
            "max_err": S.enc_float(self.max_err),
            "argmax_inputs": self.argmax_inputs,
            "chain": [S.enc_float(v) for v in self.chain],
            "z_scores": [[i, S.enc_float(z)] for i, z in self.z_scores],
            "trace": [[i, S.enc_float(e)] for i, e in self.trace],
            "evaluations": self.evaluations,
            "accept_rate": self.accept_rate,
            "seed": self.seed,
            "max_proposals": self.max_proposals,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ValidationCheckpoint":
        from repro.core import serialize as S

        S.check_version(data, "ValidationCheckpoint")
        return cls(
            iteration=int(data["iteration"]),
            rng_state=S.dec_rng_state(data["rng_state"]),
            current_inputs=dict(data["current_inputs"]),
            current_err=S.dec_float(data["current_err"]),
            max_err=S.dec_float(data["max_err"]),
            argmax_inputs=None if data["argmax_inputs"] is None
            else dict(data["argmax_inputs"]),
            chain=[S.dec_float(v) for v in data["chain"]],
            z_scores=[(int(i), S.dec_float(z)) for i, z in data["z_scores"]],
            trace=[(int(i), S.dec_float(e)) for i, e in data["trace"]],
            evaluations=int(data["evaluations"]),
            accept_rate=float(data["accept_rate"]),
            seed=int(data["seed"]),
            max_proposals=int(data["max_proposals"]),
        )


@dataclass
class MultiChainResult:
    """Outcome of a multi-chain validation run."""

    max_err: float
    passed: bool
    r_hat: float
    chains: List[ValidationResult] = field(default_factory=list)


class _ProposalStates:
    """Reusable machine states for speculative validation blocks.

    Validation proposals are throwaway test cases: each is executed twice
    (target, rewrite) and discarded, so the per-test pooled-state
    machinery of :class:`TestCase` pays a fresh ``build_state`` per
    proposal — about half the validator's runtime.  This pool instead
    keeps one pristine state per block slot (no live-ins applied) and,
    per use, resets only the slots the two programs can have dirtied
    (their union write set on the JIT backend; a full restore on the
    emulator) before writing the proposal's live-in values directly.
    All proposals drawn from one base test case share its segments, so
    the pristine image never changes.
    """

    __slots__ = ("segments", "_writes", "_states", "_snapshots")

    def __init__(self, segments, writes):
        self.segments = segments
        self._writes = writes  # union write set, or None => full restore
        self._states: List[MachineState] = []
        self._snapshots: List[tuple] = []

    def _grow(self) -> None:
        mem = Memory(seg.copy() if seg.writable else seg
                     for seg in self.segments)
        state = MachineState(mem)
        self._states.append(state)
        # Snapshots are per-state: a memory snapshot restores into the
        # segment objects it was captured from.
        self._snapshots.append(state.snapshot())

    def states_for(self, tests: Sequence[TestCase]) -> List[MachineState]:
        """One reset state per test, live-ins applied, aligned with
        ``tests``.  Valid until the next ``states_for`` call."""
        while len(self._states) < len(tests):
            self._grow()
        writes = self._writes
        out = []
        for index, test in enumerate(tests):
            state = self._states[index]
            if writes is None:
                state.restore(self._snapshots[index])
            else:
                state.restore_slots(self._snapshots[index], *writes)
            for loc, bits in test.inputs.items():
                loc.write(state, bits)
            out.append(state)
        return out


class Validator:
    """Bound the ULP error between a target and a rewrite by search."""

    def __init__(
        self,
        target: Program,
        rewrite: Program,
        live_outs: Sequence[Union[str, Location]],
        ranges: Dict[str, Tuple[float, float]],
        base_testcase_factory: Callable[[], TestCase],
        backend: str = "jit",
    ):
        self.runner = Runner(live_outs, backend=backend)
        self._target = self.runner.prepare(target)
        self._rewrite = self.runner.prepare(rewrite)
        self.ranges = ranges
        self.base_testcase_factory = base_testcase_factory
        self._pool: Optional[_ProposalStates] = None

    def err(self, test: TestCase) -> float:
        """Equation 13: summed ULP distance plus the signal term.

        Both executions reuse the test case's pooled machine state (the
        rewrite run resets it in place after the target run), and read
        live-outs through the Runner's precompiled readers — this is the
        validator's innermost loop, one call per input-space proposal.
        """
        t_out, t_sig = self.runner.run_values(self._target, test)
        r_out, r_sig = self.runner.run_values(self._rewrite, test)
        if t_sig is not None:
            # The target itself traps: treat as divergent only if the
            # rewrite behaves differently.
            return 0.0 if r_sig == t_sig else SIGNAL_ERR
        if r_sig is not None:
            return SIGNAL_ERR
        total = 0.0
        for loc, r_bits, t_bits in zip(self.runner.live_outs, r_out, t_out):
            total += location_ulp_distance(loc, r_bits, t_bits)
        return total

    def err_block(self, tests: Sequence[TestCase]) -> List[float]:
        """Equation 13 over a block of test cases in two batched calls.

        The JIT backend executes the whole block inside one compiled
        function per program instead of one call per (program, test)
        pair, over the validator's own proposal-state pool; results are
        bit-identical to per-test :meth:`err`.
        """
        pool = self._pool
        if pool is None:
            writes = None
            if self.runner.backend == "jit":
                writes = union_writes(self._target.writes,
                                      self._rewrite.writes)
            pool = self._pool = _ProposalStates(tests[0].segments, writes)
        if any(test.segments is not pool.segments for test in tests):
            # Foreign segments (tests not descended from this chain's
            # base test case): the pristine pool images don't apply.
            return self._err_block_generic(tests)
        runner = self.runner
        states = pool.states_for(tests)
        t_signals = runner.execute_batch_from(self._target, states, 0)
        t_values = [None if signal is not None else runner.values_of(state)
                    for state, signal in zip(states, t_signals)]
        states = pool.states_for(tests)
        r_signals = runner.execute_batch_from(self._rewrite, states, 0)
        live_outs = runner.live_outs
        errs = []
        for state, t_out, t_sig, r_sig in zip(states, t_values, t_signals,
                                              r_signals):
            if t_sig is not None:
                errs.append(0.0 if r_sig == t_sig else SIGNAL_ERR)
            elif r_sig is not None:
                errs.append(SIGNAL_ERR)
            else:
                r_out = runner.values_of(state)
                total = 0.0
                for loc, r_bits, t_bits in zip(live_outs, r_out, t_out):
                    total += location_ulp_distance(loc, r_bits, t_bits)
                errs.append(total)
        return errs

    def _err_block_generic(self, tests: Sequence[TestCase]) -> List[float]:
        """:meth:`err_block` over the tests' own pooled states (slow
        path for test cases with foreign memory segments)."""
        t_results = self.runner.run_batch(self._target, tests)
        r_results = self.runner.run_batch(self._rewrite, tests)
        live_outs = self.runner.live_outs
        errs = []
        for (t_out, t_sig), (r_out, r_sig) in zip(t_results, r_results):
            if t_sig is not None:
                errs.append(0.0 if r_sig == t_sig else SIGNAL_ERR)
            elif r_sig is not None:
                errs.append(SIGNAL_ERR)
            else:
                total = 0.0
                for loc, r_bits, t_bits in zip(live_outs, r_out, t_out):
                    total += location_ulp_distance(loc, r_bits, t_bits)
                errs.append(total)
        return errs

    def validate(self, config: ValidationConfig = ValidationConfig(),
                 strategy: Optional[ValidationStrategy] = None,
                 checkpoint_every: int = 0,
                 on_checkpoint: Optional[
                     Callable[["ValidationCheckpoint"], None]] = None,
                 resume: Optional["ValidationCheckpoint"] = None,
                 ) -> ValidationResult:
        """Run the input-space chain until mixed or out of budget.

        Proposals are evaluated in speculative blocks: a block of inputs
        is drawn from ``q(. | current)`` up front and executed in two
        batched calls (:meth:`err_block`), then consumed sequentially by
        the Metropolis-Hastings loop.  An accept changes the chain state,
        so the rest of the block — drawn conditioned on the *old* current
        — is discarded; every consumed proposal therefore sees exactly
        the distribution the scalar chain would have drawn, and the chain
        law is unchanged.  The block size tracks the reciprocal of an
        exponentially weighted acceptance-rate estimate — the expected
        rejection streak length — capped at ``config.max_block``, so
        speculation only grows where rejection streaks make the batched
        evaluation profitable.

        Strategies with ``uniform_proposals`` (random testing) draw
        independently of the chain state, so an accept invalidates
        nothing: their blocks are always full-sized and fully consumed,
        and blocking cannot change the realized sample stream (their
        ``accept`` never consumes randomness).  Chain strategies *do*
        realize a different path per block size (same chain law), so
        ``max_block=None`` keeps them scalar unless explicitly raised.
        """
        strategy = strategy if strategy is not None else ValidationMcmc()
        rng = random.Random(config.seed)
        proposer = TestCaseProposer(self.ranges,
                                    sigma_fraction=config.sigma_fraction)

        base = self.base_testcase_factory()
        if resume is not None:
            echo = (resume.seed, resume.max_proposals)
            want = (config.seed, config.max_proposals)
            if echo != want:
                raise ValueError(
                    f"checkpoint was taken under config {echo} "
                    f"(seed, max_proposals); resuming under {want}")
            rng.setstate(resume.rng_state)
            current = TestCase(dict(resume.current_inputs), base.segments)
            current_err = resume.current_err
            max_err = resume.max_err
            argmax = None if resume.argmax_inputs is None \
                else TestCase(dict(resume.argmax_inputs), base.segments)
            chain = list(resume.chain)
            z_scores = list(resume.z_scores)
            trace = list(resume.trace)
            evaluations = resume.evaluations
            accept_rate = resume.accept_rate
            iteration = resume.iteration
            samples = iteration
        else:
            current = proposer.initial(rng, base)
            current_err = self.err(current)
            max_err, argmax = current_err, current
            # The Geweke diagnostic runs on log-compressed errors: the raw
            # error spans ~19 decades, which would let a single spike
            # dominate the spectral density estimate forever.
            chain = [math.log1p(current_err)]
            z_scores = []
            trace = [(0, max_err)]
            samples = 0
            evaluations = 0
            # Exponentially weighted acceptance-rate estimate; the block
            # is sized to the expected rejection streak (1 / p-hat).  The
            # prior of 0.5 starts the chain scalar and lets rejection
            # streaks grow the block as evidence accumulates.
            accept_rate = 0.5
            iteration = 0
        trace_stride = max(1, config.max_proposals
                           // max(1, config.trace_points))
        converged = False
        ewma = 0.05
        independent = strategy.uniform_proposals
        draw = (proposer.propose_uniform if independent
                else proposer.propose)
        max_block = config.max_block
        if max_block is None:
            max_block = DEFAULT_UNIFORM_BLOCK if independent else 1

        last_checkpoint = iteration
        while iteration < config.max_proposals and not converged:
            if (checkpoint_every and on_checkpoint is not None
                    and iteration - last_checkpoint >= checkpoint_every):
                last_checkpoint = iteration
                on_checkpoint(ValidationCheckpoint(
                    iteration=iteration,
                    rng_state=rng.getstate(),
                    current_inputs={str(loc): bits for loc, bits
                                    in current.inputs.items()},
                    current_err=current_err,
                    max_err=max_err,
                    argmax_inputs=None if argmax is None
                    else {str(loc): bits for loc, bits
                          in argmax.inputs.items()},
                    chain=list(chain),
                    z_scores=list(z_scores),
                    trace=list(trace),
                    evaluations=evaluations,
                    accept_rate=accept_rate,
                    seed=config.seed,
                    max_proposals=config.max_proposals,
                ))
            if independent:
                block = max_block
            else:
                block = min(max_block,
                            max(1, int(1.0 / max(accept_rate,
                                                 1.0 / max_block))))
            size = min(block, config.max_proposals - iteration)
            proposals = [draw(rng, current) for _ in range(size)]
            errs = (self.err_block(proposals) if size > 1
                    else [self.err(proposals[0])])
            evaluations += size
            for proposal, err in zip(proposals, errs):
                iteration += 1
                samples = iteration
                if err > max_err:
                    max_err, argmax = err, proposal
                accepted = strategy.accept(rng, current_err, err, iteration,
                                           config.max_proposals)
                if accepted:
                    current, current_err = proposal, err
                accept_rate += ewma * ((1.0 if accepted else 0.0)
                                       - accept_rate)
                chain.append(math.log1p(current_err))
                if iteration % trace_stride == 0:
                    trace.append((iteration, max_err))
                if (iteration >= config.min_samples
                        and iteration % config.check_interval == 0):
                    z = geweke_z(chain)
                    z_scores.append((iteration, z))
                    if abs(z) < config.z_threshold:
                        converged = True
                        break
                if accepted and not independent:
                    # The rest of the block was drawn conditioned on the
                    # superseded current — discard it.
                    break

        if trace[-1][0] != samples:
            trace.append((samples, max_err))
        return ValidationResult(
            max_err=max_err,
            argmax=argmax,
            samples=samples,
            converged=converged,
            passed=max_err <= config.eta,
            z_scores=z_scores,
            trace=trace,
            chain=chain if config.keep_chain else None,
            evaluations=evaluations,
            wasted=evaluations - samples,
        )

    def validate_multichain(self, config: ValidationConfig,
                            chains: int = 4) -> "MultiChainResult":
        """Run independent chains and combine with the R-hat diagnostic.

        Each chain gets a derived seed; the reported bound is the max
        over chains and convergence evidence is Gelman-Rubin's potential
        scale reduction factor over the log-error chains.
        """
        from dataclasses import replace

        from repro.validation.geweke import gelman_rubin

        if chains < 2:
            raise ValueError("multi-chain validation needs >= 2 chains")
        results = []
        for chain_index in range(chains):
            chain_config = replace(config, seed=config.seed + chain_index,
                                   keep_chain=True)
            results.append(self.validate(chain_config))
        r_hat = gelman_rubin([r.chain for r in results])
        max_err = max(r.max_err for r in results)
        return MultiChainResult(
            max_err=max_err,
            passed=max_err <= config.eta,
            r_hat=r_hat,
            chains=results,
        )


def validate(target: Program, rewrite: Program,
             live_outs: Sequence[Union[str, Location]],
             ranges: Dict[str, Tuple[float, float]],
             base_testcase_factory: Callable[[], TestCase],
             config: ValidationConfig = ValidationConfig(),
             backend: str = "jit") -> ValidationResult:
    """Equation 15 as a convenience function."""
    validator = Validator(target, rewrite, live_outs, ranges,
                          base_testcase_factory, backend=backend)
    return validator.validate(config)
