"""MCMC validation of optimizations (Section 4, Equations 13-15).

The validator searches the *input* space of a (target, rewrite) pair for
the test case that maximizes their ULP error ``err(R; T, t)``.  By
Theorem 1, in the limit the chain samples test cases in proportion to the
error value, so the maximum is found — and found more often than any
other value.  Termination uses the Geweke mixing diagnostic: once the
chain of observed errors looks stationary, the largest sample is reported
as the bound on the optimization's rounding error.

This is *validation*, not verification: the bound comes with an
asymptotic guarantee and strong evidence, not a proof.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.x86.program import Program
from repro.x86.testcase import TestCase

from repro.core.cost import location_ulp_distance
from repro.core.runner import Location, Runner
from repro.validation.geweke import geweke_z
from repro.validation.proposals import TestCaseProposer
from repro.validation.strategies import ValidationMcmc, ValidationStrategy

# err(R;T,t) contribution of divergent signal behaviour: ">eta" for every
# eta (Equation 13) — larger than any representable ULP distance.
SIGNAL_ERR = 2.0 ** 80


@dataclass(frozen=True)
class ValidationConfig:
    """Knobs of one validation run (paper defaults, scaled down)."""

    eta: float = 0.0
    max_proposals: int = 50_000
    min_samples: int = 2_000
    check_interval: int = 1_000
    z_threshold: float = 1.96
    sigma_fraction: float = 0.05
    seed: int = 0
    trace_points: int = 64
    keep_chain: bool = False


@dataclass
class ValidationResult:
    """Outcome of a validation run."""

    max_err: float
    argmax: Optional[TestCase]
    samples: int
    converged: bool
    passed: bool
    z_scores: List[Tuple[int, float]] = field(default_factory=list)
    trace: List[Tuple[int, float]] = field(default_factory=list)
    # Log-compressed error chain, kept when config.keep_chain is set
    # (used by the multi-chain R-hat diagnostic).
    chain: Optional[List[float]] = None


@dataclass
class MultiChainResult:
    """Outcome of a multi-chain validation run."""

    max_err: float
    passed: bool
    r_hat: float
    chains: List[ValidationResult] = field(default_factory=list)


class Validator:
    """Bound the ULP error between a target and a rewrite by search."""

    def __init__(
        self,
        target: Program,
        rewrite: Program,
        live_outs: Sequence[Union[str, Location]],
        ranges: Dict[str, Tuple[float, float]],
        base_testcase_factory: Callable[[], TestCase],
        backend: str = "jit",
    ):
        self.runner = Runner(live_outs, backend=backend)
        self._target = self.runner.prepare(target)
        self._rewrite = self.runner.prepare(rewrite)
        self.ranges = ranges
        self.base_testcase_factory = base_testcase_factory

    def err(self, test: TestCase) -> float:
        """Equation 13: summed ULP distance plus the signal term.

        Both executions reuse the test case's pooled machine state (the
        rewrite run resets it in place after the target run), and read
        live-outs through the Runner's precompiled readers — this is the
        validator's innermost loop, one call per input-space proposal.
        """
        t_out, t_sig = self.runner.run_values(self._target, test)
        r_out, r_sig = self.runner.run_values(self._rewrite, test)
        if t_sig is not None:
            # The target itself traps: treat as divergent only if the
            # rewrite behaves differently.
            return 0.0 if r_sig == t_sig else SIGNAL_ERR
        if r_sig is not None:
            return SIGNAL_ERR
        total = 0.0
        for loc, r_bits, t_bits in zip(self.runner.live_outs, r_out, t_out):
            total += location_ulp_distance(loc, r_bits, t_bits)
        return total

    def validate(self, config: ValidationConfig = ValidationConfig(),
                 strategy: Optional[ValidationStrategy] = None,
                 ) -> ValidationResult:
        """Run the input-space chain until mixed or out of budget."""
        strategy = strategy if strategy is not None else ValidationMcmc()
        rng = random.Random(config.seed)
        proposer = TestCaseProposer(self.ranges,
                                    sigma_fraction=config.sigma_fraction)

        current = proposer.initial(rng, self.base_testcase_factory())
        current_err = self.err(current)
        max_err, argmax = current_err, current
        # The Geweke diagnostic runs on log-compressed errors: the raw
        # error spans ~19 decades, which would let a single spike dominate
        # the spectral density estimate forever.
        chain: List[float] = [math.log1p(current_err)]
        z_scores: List[Tuple[int, float]] = []
        trace: List[Tuple[int, float]] = [(0, max_err)]
        trace_stride = max(1, config.max_proposals
                           // max(1, config.trace_points))
        converged = False
        samples = 0

        for iteration in range(1, config.max_proposals + 1):
            samples = iteration
            if strategy.uniform_proposals:
                proposal = proposer.propose_uniform(rng, current)
            else:
                proposal = proposer.propose(rng, current)
            err = self.err(proposal)
            if err > max_err:
                max_err, argmax = err, proposal
            if strategy.accept(rng, current_err, err, iteration,
                               config.max_proposals):
                current, current_err = proposal, err
            chain.append(math.log1p(current_err))
            if iteration % trace_stride == 0:
                trace.append((iteration, max_err))
            if (iteration >= config.min_samples
                    and iteration % config.check_interval == 0):
                z = geweke_z(chain)
                z_scores.append((iteration, z))
                if abs(z) < config.z_threshold:
                    converged = True
                    break

        if trace[-1][0] != samples:
            trace.append((samples, max_err))
        return ValidationResult(
            max_err=max_err,
            argmax=argmax,
            samples=samples,
            converged=converged,
            passed=max_err <= config.eta,
            z_scores=z_scores,
            trace=trace,
            chain=chain if config.keep_chain else None,
        )

    def validate_multichain(self, config: ValidationConfig,
                            chains: int = 4) -> "MultiChainResult":
        """Run independent chains and combine with the R-hat diagnostic.

        Each chain gets a derived seed; the reported bound is the max
        over chains and convergence evidence is Gelman-Rubin's potential
        scale reduction factor over the log-error chains.
        """
        from dataclasses import replace

        from repro.validation.geweke import gelman_rubin

        if chains < 2:
            raise ValueError("multi-chain validation needs >= 2 chains")
        results = []
        for chain_index in range(chains):
            chain_config = replace(config, seed=config.seed + chain_index,
                                   keep_chain=True)
            results.append(self.validate(chain_config))
        r_hat = gelman_rubin([r.chain for r in results])
        max_err = max(r.max_err for r in results)
        return MultiChainResult(
            max_err=max_err,
            passed=max_err <= config.eta,
            r_hat=r_hat,
            chains=results,
        )


def validate(target: Program, rewrite: Program,
             live_outs: Sequence[Union[str, Location]],
             ranges: Dict[str, Tuple[float, float]],
             base_testcase_factory: Callable[[], TestCase],
             config: ValidationConfig = ValidationConfig(),
             backend: str = "jit") -> ValidationResult:
    """Equation 15 as a convenience function."""
    validator = Validator(target, rewrite, live_outs, ranges,
                          base_testcase_factory, backend=backend)
    return validator.validate(config)
