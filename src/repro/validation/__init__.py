"""MCMC validation of floating-point optimizations (Section 4)."""

from repro.validation.geweke import (
    gelman_rubin,
    geweke_z,
    is_converged,
    spectral_density_at_zero,
)
from repro.validation.proposals import InputRange, TestCaseProposer
from repro.validation.strategies import (
    ValidationAnneal,
    ValidationHill,
    ValidationMcmc,
    ValidationRandom,
    ValidationStrategy,
    make_validation_strategy,
)
from repro.validation.validator import (
    MultiChainResult,
    SIGNAL_ERR,
    ValidationConfig,
    ValidationResult,
    Validator,
    validate,
)

__all__ = [
    "gelman_rubin",
    "geweke_z",
    "MultiChainResult",
    "is_converged",
    "spectral_density_at_zero",
    "InputRange",
    "TestCaseProposer",
    "ValidationAnneal",
    "ValidationHill",
    "ValidationMcmc",
    "ValidationRandom",
    "ValidationStrategy",
    "make_validation_strategy",
    "SIGNAL_ERR",
    "ValidationConfig",
    "ValidationResult",
    "Validator",
    "validate",
]
