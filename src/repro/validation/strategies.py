"""Input-search strategies for validation (Figure 10 e-h).

Validation *maximizes* the error function, sampling in proportion to its
value (Section 4), so these are distinct from the cost-minimizing search
strategies: the MCMC variant uses the ratio of error values as its
acceptance probability, and the random variant redraws inputs uniformly
instead of walking.
"""

from __future__ import annotations

import math
import random


class ValidationStrategy:
    """Acceptance rule + proposal style for the input search."""

    name = "strategy"
    uniform_proposals = False

    def accept(self, rng: random.Random, current_err: float,
               proposal_err: float, iteration: int, total: int) -> bool:
        raise NotImplementedError


class ValidationMcmc(ValidationStrategy):
    """Metropolis sampling from ``p(t) ∝ err(t) + 1``.

    The +1 smoothing keeps zero-error regions reachable so the chain can
    cross flat valleys between error peaks.
    """

    name = "mcmc"

    def accept(self, rng, current_err, proposal_err, iteration, total):
        if proposal_err >= current_err:
            return True
        ratio = (proposal_err + 1.0) / (current_err + 1.0)
        return rng.random() < ratio


class ValidationHill(ValidationStrategy):
    """Greedy ascent: accept only non-decreasing error."""

    name = "hill"

    def accept(self, rng, current_err, proposal_err, iteration, total):
        return proposal_err >= current_err


class ValidationRandom(ValidationStrategy):
    """Pure random testing: fresh uniform inputs every step."""

    name = "rand"
    uniform_proposals = True

    def accept(self, rng, current_err, proposal_err, iteration, total):
        return True


class ValidationAnneal(ValidationStrategy):
    """Simulated annealing on ``-err`` with geometric cooling.

    Temperatures are in units of log-error ratio, so early in the run
    large drops in error are accepted and late in the run behaviour
    approaches greedy ascent.
    """

    name = "anneal"

    def __init__(self, t_start: float = 8.0, t_end: float = 0.05):
        self.t_start = t_start
        self.t_end = t_end

    def accept(self, rng, current_err, proposal_err, iteration, total):
        if proposal_err >= current_err:
            return True
        frac = min(1.0, iteration / max(1, total - 1))
        temp = self.t_start * (self.t_end / self.t_start) ** frac
        drop = math.log1p(current_err) - math.log1p(proposal_err)
        exponent = -drop / temp if temp > 0 else -math.inf
        return exponent > -745.0 and rng.random() < math.exp(exponent)


def make_validation_strategy(name: str) -> ValidationStrategy:
    """Factory used by the Figure 10 harness."""
    strategies = {
        "mcmc": ValidationMcmc,
        "hill": ValidationHill,
        "rand": ValidationRandom,
        "anneal": ValidationAnneal,
    }
    try:
        return strategies[name]()
    except KeyError:
        raise ValueError(f"unknown validation strategy: {name!r}") from None
