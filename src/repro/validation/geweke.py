"""The Geweke convergence diagnostic (Section 5.3, Equations 18-19).

Splits a chain of samples into an early window and a late window and
compares their means, normalized by spectral density estimates at zero
frequency.  For a stationary chain the statistic converges to a standard
normal, so a small ``|Z|`` is evidence the chain has mixed well.

The spectral density at zero frequency is estimated with a Bartlett
(Newey-West) lag window, the standard choice in statistical computing
packages.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np


def spectral_density_at_zero(samples: Sequence[float],
                             max_lag: Optional[int] = None) -> float:
    """Newey-West estimate ``s(0) = γ₀ + 2 Σ (1 - k/(L+1)) γₖ``."""
    x = np.asarray(samples, dtype=float)
    n = len(x)
    if n < 2:
        return 0.0
    if max_lag is None:
        max_lag = min(n - 1, max(1, int(round(n ** (1.0 / 3.0)))))
    x = x - x.mean()
    gamma0 = float(np.dot(x, x)) / n
    s = gamma0
    for k in range(1, max_lag + 1):
        gamma_k = float(np.dot(x[:-k], x[k:])) / n
        s += 2.0 * (1.0 - k / (max_lag + 1.0)) * gamma_k
    return max(s, 0.0)


def geweke_z(samples: Sequence[float], first: float = 0.1,
             last: float = 0.5) -> float:
    """The Geweke Z statistic over the first and last chain windows.

    ``first`` and ``last`` are the window fractions (defaults are the
    conventional 10%/50%).  Returns ``inf`` when a variance estimate
    degenerates on a constant window (a constant chain returns 0).
    """
    x = np.asarray(samples, dtype=float)
    n = len(x)
    if n < 10:
        raise ValueError("need at least 10 samples for the Geweke test")
    if not (0.0 < first < 1.0 and 0.0 < last < 1.0 and first + last < 1.0):
        raise ValueError("window fractions must be in (0, 1) and disjoint")
    n1 = max(2, int(n * first))
    n2 = max(2, int(n * last))
    theta1 = x[:n1]
    theta2 = x[n - n2:]
    var = spectral_density_at_zero(theta1) / n1 \
        + spectral_density_at_zero(theta2) / n2
    diff = float(theta1.mean() - theta2.mean())
    if var <= 0.0:
        return 0.0 if diff == 0.0 else math.inf
    return diff / math.sqrt(var)


def is_converged(samples: Sequence[float], z_threshold: float = 1.96,
                 first: float = 0.1, last: float = 0.5) -> bool:
    """True when ``|Z|`` is below the threshold."""
    return abs(geweke_z(samples, first, last)) < z_threshold


def gelman_rubin(chains: Sequence[Sequence[float]]) -> float:
    """The Gelman-Rubin potential-scale-reduction factor (R-hat).

    A multi-chain complement to the single-chain Geweke test: values near
    1 indicate the independent chains are sampling the same distribution.
    Used by the multi-chain validation mode.
    """
    arrays = [np.asarray(c, dtype=float) for c in chains]
    if len(arrays) < 2:
        raise ValueError("need at least two chains")
    n = min(len(a) for a in arrays)
    if n < 4:
        raise ValueError("chains too short for R-hat")
    x = np.stack([a[:n] for a in arrays])
    m = x.shape[0]
    chain_means = x.mean(axis=1)
    chain_vars = x.var(axis=1, ddof=1)
    w = float(chain_vars.mean())
    b = float(n * chain_means.var(ddof=1))
    if w == 0.0:
        return 1.0 if b == 0.0 else math.inf
    var_plus = (n - 1) / n * w + b / n
    return math.sqrt(var_plus / w)
