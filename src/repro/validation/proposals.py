"""Test-case proposal distribution for validation (Equation 16).

Successor test cases perturb each floating-point live-in by a draw from a
normal distribution; components that would leave the user-specified
``[l_min, l_max]`` range keep their old value.  Keeping pointer-valued
live-ins fixed guarantees proposals never leave the memory sandbox.
Ergodicity and symmetry follow from the normal distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.x86.locations import Loc, MemLoc, parse_loc
from repro.x86.testcase import TestCase, decode_from, encode_for

LocLike = Union[str, Loc, MemLoc]


@dataclass(frozen=True)
class InputRange:
    """Valid range of one floating-point live-in."""

    lo: float
    hi: float

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi


class TestCaseProposer:
    """Gaussian random-walk proposals over the floating-point live-ins."""

    # Not a test class, despite the Test* name pytest keys on.
    __test__ = False

    def __init__(self, ranges: Dict[LocLike, Tuple[float, float]],
                 sigma_fraction: float = 0.05,
                 mu: float = 0.0):
        self.ranges: Dict[Loc, InputRange] = {}
        for key, (lo, hi) in ranges.items():
            loc = key if isinstance(key, (Loc, MemLoc)) else parse_loc(key)
            if lo >= hi:
                raise ValueError(f"empty range for {loc}: [{lo}, {hi}]")
            self.ranges[loc] = InputRange(lo, hi)
        self.sigma_fraction = sigma_fraction
        self.mu = mu
        self._sigmas = {loc: spec.width * sigma_fraction
                        for loc, spec in self.ranges.items()}
        # One-entry decode cache: speculative block evaluation draws many
        # proposals from the same ``current``, and decoding its live-ins
        # once per draw was a measurable share of the chain's runtime.
        self._decoded: Tuple[Optional[TestCase], Dict] = (None, {})

    def _values_of(self, current: TestCase) -> Dict:
        cached, values = self._decoded
        if cached is not current:
            values = {loc: decode_from(loc, current.inputs[loc])
                      for loc in self.ranges}
            self._decoded = (current, values)
        return values

    def initial(self, rng: random.Random, base: TestCase) -> TestCase:
        """A starting point: uniform draw for each ranged live-in."""
        tc = base
        for loc, rng_spec in self.ranges.items():
            value = rng.uniform(rng_spec.lo, rng_spec.hi)
            tc = tc.replace(loc, encode_for(loc, value))
        return tc

    def propose(self, rng: random.Random, current: TestCase) -> TestCase:
        """Equation 16: perturb every ranged live-in, clamping by reuse."""
        tc = current
        values = self._values_of(current)
        for loc, rng_spec in self.ranges.items():
            candidate = values[loc] + rng.gauss(self.mu, self._sigmas[loc])
            if rng_spec.contains(candidate):
                tc = tc.replace(loc, encode_for(loc, candidate))
        return tc

    def propose_uniform(self, rng: random.Random,
                        current: TestCase) -> TestCase:
        """Independent uniform redraw (used by the random-search variant)."""
        tc = current
        for loc, rng_spec in self.ranges.items():
            value = rng.uniform(rng_spec.lo, rng_spec.hi)
            tc = tc.replace(loc, encode_for(loc, value))
        return tc
