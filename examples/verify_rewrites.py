"""Verification vs validation on the aek kernels (Sections 4 and 6.3).

Shows the paper's three-way comparison on real rewrites:

* the bit-wise dot/scale/add rewrites are *proved* equivalent with
  floating-point operations treated as uninterpreted functions;
* the imprecise delta rewrite cannot be proved, but interval analysis
  gives a sound (and very coarse) ULP bound;
* MCMC validation gives a far tighter empirical bound with a Geweke
  convergence certificate.

Run:  python examples/verify_rewrites.py
"""

from repro import ValidationConfig, Validator, check_equivalent_uf, interval_ulp_bound
from repro.kernels.aek import vector as V
from repro.x86.memory import Memory


def main() -> None:
    print("== Uninterpreted-function proofs (Figure 6) ==")
    for name in ("scale", "dot", "add", "delta"):
        spec = V.AEK_KERNELS[name]()
        rewrite = V.AEK_REWRITES[name]()
        result = check_equivalent_uf(
            spec.program, rewrite, spec.live_outs,
            memory=Memory(V.aek_segments()),
            concrete_gp=V.CONCRETE_GP_INDICES)
        verdict = "PROVED bit-wise equivalent" if result.proved \
            else "unknown (not provable with UF)"
        print(f"  {name:6s}: {verdict}")

    print()
    print("== Static vs dynamic bounds for the imprecise delta ==")
    spec = V.delta_kernel()
    rewrite = V.delta_rewrite()

    ranges = dict(spec.ranges)
    ranges.update(V.delta_mem_ranges())
    static = interval_ulp_bound(
        spec.program, rewrite, spec.live_outs, ranges,
        memory=Memory(V.aek_segments()),
        concrete_gp=V.CONCRETE_GP_INDICES, max_boxes=256)
    print(f"  interval analysis (sound):   {static.bound_ulps:.3e} ULPs "
          f"({static.boxes_explored} boxes)")

    validator = Validator(spec.program, rewrite, spec.live_outs,
                          dict(spec.ranges), spec.base_testcase)
    dynamic = validator.validate(ValidationConfig(
        max_proposals=10_000, min_samples=2_000, seed=0))
    print(f"  MCMC validation (evidence):  {dynamic.max_err:.3e} ULPs "
          f"(converged={dynamic.converged}, {dynamic.samples} samples)")
    ratio = static.bound_ulps / max(dynamic.max_err, 1.0)
    print(f"  static bound is {ratio:,.0f}x weaker — the Section 6.3 gap "
          f"(paper: 1363.5 vs 5 ULPs)")


if __name__ == "__main__":
    main()
