"""Tunable precision: trade ULPs of the sin kernel for speed (Figure 4).

Runs the stochastic search on the libimf-style sin kernel at several
values of the minimum acceptable ULP error ``eta``, then validates each
discovered rewrite with the MCMC input search of Section 4 and prints the
LOC / speedup / validated-error frontier.

Run:  python examples/tunable_precision.py [--proposals N]
"""

import argparse
import random

from repro import CostConfig, SearchConfig, Stoke, ValidationConfig, Validator
from repro.kernels import sin_kernel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--proposals", type=int, default=8000)
    parser.add_argument("--testcases", type=int, default=32)
    args = parser.parse_args()

    spec = sin_kernel()
    tests = spec.testcases(random.Random(0), args.testcases)
    print(f"target sin kernel: {spec.loc} LOC, {spec.latency} cycles, "
          f"inputs in [{spec.ranges['xmm0'][0]:.3f}, "
          f"{spec.ranges['xmm0'][1]:.3f}]")
    print()
    print(f"{'eta':>8} {'LOC':>4} {'speedup':>8} {'validated max ULPs':>20}")

    for exponent in (0, 4, 8, 12, 16):
        eta = 10.0 ** exponent
        stoke = Stoke(spec.program, tests, spec.live_outs,
                      CostConfig(eta=eta, k=1.0))
        result = stoke.optimize(SearchConfig(proposals=args.proposals,
                                             seed=11))
        rewrite = result.best_correct or spec.program
        # Validate: how large can the error actually get over the range?
        validator = Validator(spec.program, rewrite, spec.live_outs,
                              dict(spec.ranges), spec.base_testcase)
        vres = validator.validate(ValidationConfig(
            eta=eta, max_proposals=4000, min_samples=1000, seed=3))
        status = "<= eta" if vres.passed else "exceeds eta (unsound test set)"
        print(f"1e{exponent:<6d} {rewrite.loc:>4d} "
              f"{result.speedup():>7.2f}x {vres.max_err:>14.3e} {status}")


if __name__ == "__main__":
    main()
