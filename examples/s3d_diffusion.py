"""The S3D diffusion leaf task with a tunable-precision exp (Figure 5).

Optimizes the solver's shipped exp kernel at increasing eta, runs the
diffusion leaf task with each rewrite executing through the simulator,
and reports kernel speedup, Amdahl full-task speedup, and whether the
task still tolerates the precision loss.

Run:  python examples/s3d_diffusion.py [--proposals N] [--grid N]
"""

import argparse
import random

from repro import CostConfig, SearchConfig, Stoke
from repro.kernels import exp_s3d_kernel, lift_kernel
from repro.kernels.s3d import (
    aggregate_error,
    reference_diffusion,
    run_diffusion,
    task_speedup,
    tolerates,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--proposals", type=int, default=6000)
    parser.add_argument("--grid", type=int, default=6)
    args = parser.parse_args()

    spec = exp_s3d_kernel()
    tests = spec.testcases(random.Random(0), 24)
    reference = reference_diffusion(n=args.grid)
    print(f"S3D exp kernel: {spec.loc} LOC / {spec.latency} cycles; "
          f"diffusion grid {args.grid}^3, "
          f"{4 * args.grid ** 3} exp calls per run")
    print()
    header = (f"{'eta':>6} {'LOC':>4} {'exp speedup':>12} "
              f"{'task speedup':>13} {'agg error':>10} {'usable':>7}")
    print(header)

    for exponent in (0, 9, 12, 15, 18):
        eta = 10.0 ** exponent
        stoke = Stoke(spec.program, tests, spec.live_outs,
                      CostConfig(eta=eta, k=1.0))
        result = stoke.optimize(SearchConfig(proposals=args.proposals,
                                             seed=1))
        rewrite = result.best_correct or spec.program
        task = run_diffusion(lift_kernel(spec, rewrite), n=args.grid)
        err = aggregate_error(task, reference)
        usable = tolerates(task, reference)
        print(f"1e{exponent:<4d} {rewrite.loc:>4d} "
              f"{result.speedup():>11.2f}x "
              f"{task_speedup(result.speedup()):>12.2f}x "
              f"{err:>10.2e} {'yes' if usable else 'NO':>7}")

    print()
    print("The task tolerates precision loss up to a threshold (the")
    print("vertical bar in Figure 5a); beyond it the aggregate error")
    print("makes the simulation useless even though it runs faster.")


if __name__ == "__main__":
    main()
