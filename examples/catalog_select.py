"""Render the aek scene with catalog-selected kernels under an error
budget.

The certified catalog answers the deployment question directly: given a
whole-workload error tolerance, which implementation of each kernel
should serve?  This example selects against the ``aek`` workload preset
(the tracer's inner-loop call mix), renders the scene with exactly the
chosen programs, and reports the certified composite bound, the static
latency win, and the observed pixel differences.

By default it assembles a demonstration catalog from the paper's known
aek rewrites — the bit-wise scale/dot/add rewrites enter as UF-proved
(error 0) and the imprecise delta rewrite carries its sound interval
bound of 4.15e9 ULPs (EXPERIMENTS.md E8) — so the budget decides
whether depth-of-field blur survives.  Point ``--store`` at a campaign
ledger with a built catalog to select from freshly certified results
instead.

Run:  PYTHONPATH=src python examples/catalog_select.py --budget 5e9
"""

import argparse
import time

from repro.catalog import assemble_catalog, select_for_budget
from repro.catalog.frontier import program_text_digest
from repro.core.serialize import dec_float, program_to_dict
from repro.kernels.aek import (
    AEK_KERNELS,
    RenderConfig,
    add_rewrite,
    delta_rewrite,
    dot_rewrite,
    error_pixels,
    render_with,
    scale_rewrite,
)

# The paper's rewrites with their verification outcomes: scale/dot/add
# are proved bit-equivalent (EXPERIMENTS.md E6), delta's sound interval
# bound is 4.15e9 ULPs (E8).
DEMO_REWRITES = {
    "scale": (scale_rewrite, None),
    "dot": (dot_rewrite, None),
    "add": (add_rewrite, None),
    "delta": (delta_rewrite, 4.15e9),
}


def demo_catalog():
    """A catalog body built from the known rewrites; returns
    ``(body, programs)`` with ``programs`` mapping entry id -> Program
    for the render step."""
    cells, docs, programs = [], {}, {}
    for name, (factory, bound) in DEMO_REWRITES.items():
        target = AEK_KERNELS[name]().program
        rewrite = factory()
        text = program_to_dict(rewrite)["text"]
        sel, ver = f"sel-{name}", f"ver-{name}"
        docs[sel] = {"best_correct": program_to_dict(rewrite),
                     "latency": rewrite.latency,
                     "target_latency": target.latency}
        if bound is None:
            docs[ver] = {"engine": "uf", "proved": True,
                         "rewrite_digest": program_text_digest(text)}
        else:
            docs[ver] = {"engine": "bnb", "bound_ulps": bound,
                         "rewrite_digest": program_text_digest(text),
                         "certificate_digest": None}
        cells.append((name, 0.0 if bound is None else 1.0, sel, ver))
        programs[f"{name}/eta={0 if bound is None else 1:g}"] = rewrite
    return assemble_catalog(cells, docs), programs


def ledger_catalog(store, campaign):
    """``(body, programs)`` from a real campaign ledger."""
    from repro.catalog import load_catalog_bytes, resolve_catalog
    from repro.core.serialize import program_from_dict
    from repro.service import Ledger

    with Ledger(store) as ledger:
        digest = resolve_catalog(ledger, campaign)
        if digest is None:
            raise SystemExit("no catalog in this store — run "
                             "`repro catalog build` first")
        body = load_catalog_bytes(ledger.get_artifact(digest))
        programs = {}
        for name, kernel in body["kernels"].items():
            for entry in kernel["entries"]:
                if entry["select_job"] is None:
                    continue
                doc = ledger.result_doc(entry["select_job"])
                programs[entry["id"]] = \
                    program_from_dict(doc["best_correct"])
    return body, programs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=0.0,
                        help="composite error budget in ULPs")
    parser.add_argument("--store", help="campaign ledger to select from "
                        "(default: built-in demonstration catalog)")
    parser.add_argument("--campaign", help="campaign id within --store")
    parser.add_argument("--width", type=int, default=48)
    parser.add_argument("--height", type=int, default=32)
    parser.add_argument("--samples", type=int, default=3)
    parser.add_argument("--out", help="write the selected render as PPM")
    args = parser.parse_args()

    if args.store:
        body, programs = ledger_catalog(args.store, args.campaign)
        workload = {name: calls for name, calls in
                    (("scale", 4), ("dot", 3), ("add", 3), ("delta", 6))
                    if name in body["kernels"]}
    else:
        body, programs = demo_catalog()
        workload = "aek"

    choice = select_for_budget(body, workload, args.budget)
    print(f"budget {args.budget:g} ULPs -> certified composite bound "
          f"{dec_float(choice['bound']):g} ULPs")
    print(f"static latency {choice['latency']} vs target "
          f"{choice['target_latency']} cycles "
          f"({dec_float(choice['speedup']):.2f}x)")
    kernels = {}
    for name in sorted(choice["assignment"]):
        pick = choice["assignment"][name]
        served = programs.get(pick["id"])
        if served is not None:
            kernels[name] = served
        print(f"  {name}: {pick['id']} "
              f"(error {dec_float(pick['error_ulps']):g} ULPs, "
              f"latency {pick['latency']})")

    config = RenderConfig(width=args.width, height=args.height,
                          samples=args.samples)
    start = time.perf_counter()
    reference = render_with(config=config)
    ref_seconds = time.perf_counter() - start
    start = time.perf_counter()
    selected = render_with(config=config, **kernels)
    sel_seconds = time.perf_counter() - start

    total = args.width * args.height
    diff = error_pixels(reference, selected)
    print(f"reference render: {ref_seconds:5.1f}s   "
          f"selected render: {sel_seconds:5.1f}s")
    print(f"pixels differing from reference: {diff}/{total}")
    if args.out:
        selected.write_ppm(args.out)
        print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
