"""Quickstart: superoptimize a tiny floating-point kernel.

Assembles a wasteful kernel, runs a short MCMC search for a bit-wise
correct faster version, and prints the result — the smallest end-to-end
use of the library.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    CostConfig,
    SearchConfig,
    Stoke,
    assemble,
    uniform_testcases,
)


def main() -> None:
    # A deliberately wasteful kernel: ((x * 2) * 0.5) * 2 * 2 == 4x.
    target = assemble("""
        movq $2.0d, xmm1
        mulsd xmm1, xmm0
        movq $0.5d, xmm2
        mulsd xmm2, xmm0
        addsd xmm0, xmm0
        addsd xmm0, xmm0
    """)
    print("target:")
    print(target.to_text())
    print(f"  {target.loc} LOC, {target.latency} cycles (latency model)")

    # Test cases over the input range we care about (Equation 16's
    # [l_min, l_max]); eta = 0 demands bit-wise correctness.
    tests = uniform_testcases(random.Random(0), 32,
                              {"xmm0": (-100.0, 100.0)})
    stoke = Stoke(target, tests, live_outs=["xmm0"],
                  cost_config=CostConfig(eta=0.0, k=1.0))
    result = stoke.optimize(SearchConfig(proposals=5000, seed=7))

    assert result.found_correct, "search failed to find a correct rewrite"
    rewrite = result.best_correct
    print("best bit-wise correct rewrite:")
    print(rewrite.to_text())
    print(f"  {rewrite.loc} LOC, {rewrite.latency} cycles "
          f"-> {result.speedup():.2f}x speedup")
    print(f"  ({result.stats.proposals} proposals, "
          f"{result.stats.proposals_per_second:.0f}/s, "
          f"acceptance rate {result.stats.acceptance_rate:.2f})")


if __name__ == "__main__":
    main()
