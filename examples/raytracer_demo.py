"""Render the aek scene with optimized kernels (Figure 9).

Renders the ray-traced scene three ways — gcc-style targets, bit-wise
correct STOKE rewrites, and the valid lower-precision camera-perturbation
rewrite — writes PPM images, and reports the pixel differences.  Every
vector operation in the inner loop executes simulated machine code, so
what you see is the rewrites' actual bit-level behaviour.

Run:  python examples/raytracer_demo.py [--out DIR] [--width W]
"""

import argparse
import os
import time

from repro.kernels.aek import (
    RenderConfig,
    add_rewrite,
    delta_prime,
    delta_rewrite,
    dot_rewrite,
    error_pixels,
    render_with,
    scale_rewrite,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="aek_images")
    parser.add_argument("--width", type=int, default=48)
    parser.add_argument("--height", type=int, default=32)
    parser.add_argument("--samples", type=int, default=3)
    args = parser.parse_args()

    config = RenderConfig(width=args.width, height=args.height,
                          samples=args.samples)
    os.makedirs(args.out, exist_ok=True)

    variants = {
        "reference": {},
        "bitwise": dict(scale=scale_rewrite(), dot=dot_rewrite(),
                        add=add_rewrite()),
        "imprecise": dict(scale=scale_rewrite(), dot=dot_rewrite(),
                          add=add_rewrite(), delta=delta_rewrite()),
        "no_blur": dict(delta=delta_prime()),
    }
    images = {}
    for name, kernels in variants.items():
        start = time.perf_counter()
        images[name] = render_with(config=config, **kernels)
        path = os.path.join(args.out, f"{name}.ppm")
        images[name].write_ppm(path)
        print(f"{name:10s} rendered in {time.perf_counter() - start:5.1f}s "
              f"-> {path}")

    total = args.width * args.height
    reference = images["reference"]
    for name in ("bitwise", "imprecise", "no_blur"):
        diff = error_pixels(reference, images[name])
        print(f"{name:10s}: {diff}/{total} pixels differ from reference")


if __name__ == "__main__":
    main()
