"""Ablations of the design choices DESIGN.md calls out.

* ``reduction``: the paper's max-reduction (Section 5.2) vs original
  STOKE's summation — max keeps the correctness cost bounded regardless
  of test-set size.
* ``compress``: log2 cost compression vs raw ULPs — with raw values and
  a unit annealing constant, MCMC degenerates to hill climbing (nearly
  zero uphill acceptances).
* proposal mix: single-move-type searches vs the full four-move mix.
* beta: acceptance-rate sensitivity to the annealing constant.
"""

import random

import pytest

from repro.core import CostConfig, SearchConfig, Stoke
from repro.core.strategies import McmcStrategy
from repro.core.transforms import Transforms
from repro.kernels.libimf import exp_s3d_kernel

from _util import TESTCASES, one_shot

PROPOSALS = 1_200
ETA = 1.0e12


def _stoke(config: CostConfig, transforms=None):
    spec = exp_s3d_kernel()
    tests = spec.testcases(random.Random(0), TESTCASES)
    return spec, Stoke(spec.program, tests, spec.live_outs, config,
                       transforms=transforms)


@pytest.mark.parametrize("reduction", ["max", "sum"])
def test_reduction_ablation(benchmark, reduction):
    spec, stoke = _stoke(CostConfig(eta=ETA, k=1.0, reduction=reduction))
    result = one_shot(benchmark, stoke.optimize,
                      SearchConfig(proposals=PROPOSALS, seed=5))
    benchmark.extra_info.update({
        "speedup": round(result.speedup(), 3),
        "accept_rate": round(result.stats.acceptance_rate, 3),
    })


@pytest.mark.parametrize("compress", ["log2", "none"])
def test_compression_ablation(benchmark, compress):
    spec, stoke = _stoke(CostConfig(eta=ETA, k=1.0, compress=compress))
    result = one_shot(benchmark, stoke.optimize,
                      SearchConfig(proposals=PROPOSALS, seed=5))
    benchmark.extra_info.update({
        "speedup": round(result.speedup(), 3),
        "accept_rate": round(result.stats.acceptance_rate, 3),
    })


@pytest.mark.parametrize("move", ["opcode", "operand", "swap",
                                  "instruction", "all"])
def test_proposal_mix_ablation(benchmark, move):
    spec = exp_s3d_kernel()
    tests = spec.testcases(random.Random(0), TESTCASES)

    kinds = None if move == "all" else (move,)
    transforms = Transforms(spec.program, move_kinds=kinds)
    stoke = Stoke(spec.program, tests, spec.live_outs,
                  CostConfig(eta=ETA, k=1.0), transforms=transforms)
    result = one_shot(benchmark, stoke.optimize,
                      SearchConfig(proposals=PROPOSALS, seed=5))
    benchmark.extra_info["speedup"] = round(result.speedup(), 3)


@pytest.mark.parametrize("beta", [0.1, 1.0, 10.0])
def test_beta_sensitivity(benchmark, beta):
    spec, stoke = _stoke(CostConfig(eta=ETA, k=1.0))
    result = one_shot(
        benchmark, stoke.search,
        SearchConfig(proposals=PROPOSALS, seed=5),
        McmcStrategy(beta=beta))
    benchmark.extra_info.update({
        "speedup": round(result.speedup(), 3),
        "accept_rate": round(result.stats.acceptance_rate, 3),
    })


@pytest.mark.parametrize("testcases", [4, 16, 64])
def test_testcase_count_sensitivity(benchmark, testcases):
    spec = exp_s3d_kernel()
    tests = spec.testcases(random.Random(0), testcases)
    stoke = Stoke(spec.program, tests, spec.live_outs,
                  CostConfig(eta=ETA, k=1.0))
    result = one_shot(benchmark, stoke.optimize,
                      SearchConfig(proposals=600, seed=5))
    benchmark.extra_info.update({
        "speedup": round(result.speedup(), 3),
        "proposals_per_sec": round(result.stats.proposals_per_second),
    })
