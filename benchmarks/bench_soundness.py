"""Sound branch-and-bound verification: convergence and dominance.

Tracks the verifier the way BENCH_incremental.json tracks proposal
throughput: for each kernel, the certified bound at box budgets
64/256/1024/4096 (serial and with a worker pool), checked against two
obligations —

* **Dominance**: a Geweke-convergence-checked MCMC validation run's max
  observed error (a true lower bound on the sup error) never exceeds
  any certified bound; the validator's argmax also seeds the search.
* **Certificate round-trip**: the run's certificate survives JSON
  serialization and an independent :func:`repro.verify.checker.check`
  (digest match, exact bit-space tiling, re-derived leaf bounds).

As a script it writes the ``BENCH_soundness.json`` baseline consumed by
CI and fails on any dominance or certificate violation::

    PYTHONPATH=src python benchmarks/bench_soundness.py \\
        --kernels exp log --budgets 64 256 --out BENCH_soundness.json

Under pytest it doubles as a pytest-benchmark suite
(``pytest benchmarks/bench_soundness.py --benchmark-only``).
"""

import json
import math
import sys

import pytest

from repro.core.parallel import default_jobs
from repro.kernels.libimf import LIBIMF_KERNELS
from repro.validation import ValidationConfig, Validator
from repro.verify import checker
from repro.verify.bnb import BnBConfig, BnBVerifier, seeds_from_validation
from repro.verify.certificate import Certificate

BUDGETS = (64, 256, 1024, 4096)
SEED_PROPOSALS = 2_000

# Degree-reduced rewrites: real approximation error for the bound to
# chase, same instruction mix as the target.
REDUCED_DEGREE = {"sin": 9, "cos": 8, "tan": 9, "log": 12, "exp": 8,
                  "exp_s3d": 10}


def _setup(name):
    factory = LIBIMF_KERNELS[name]
    spec = factory()
    rewrite = factory(REDUCED_DEGREE[name]).program
    return spec, rewrite


def _validate(spec, rewrite, proposals=SEED_PROPOSALS):
    validator = Validator(spec.program, rewrite, spec.live_outs,
                          dict(spec.ranges), spec.base_testcase)
    return validator.validate(ValidationConfig(
        max_proposals=proposals, seed=0))


def measure_kernel(name, budgets=BUDGETS, jobs_list=(1, 0),
                   seed_proposals=SEED_PROPOSALS):
    """Bound-vs-budget curve for one kernel, with dominance and
    certificate checks folded in.  Raises AssertionError on violation."""
    spec, rewrite = _setup(name)
    validation = _validate(spec, rewrite, proposals=seed_proposals)
    verifier = BnBVerifier(spec.program, rewrite, spec.live_outs,
                           dict(spec.ranges))
    seeds = seeds_from_validation(validation, verifier.dims)

    curves = []
    cert_info = None
    for jobs in jobs_list:
        resolved = jobs if jobs else default_jobs()
        series = []
        for budget in budgets:
            config = BnBConfig(max_boxes=budget, jobs=resolved, seeds=seeds)
            result = verifier.run(config)
            assert result.complete, \
                f"{name}: incomplete analysis at budget {budget}"
            assert math.isfinite(result.bound_ulps), \
                f"{name}: infinite bound at budget {budget}"
            # Dominance: the certified bound covers the validator's
            # worst observed error.
            assert validation.max_err <= result.bound_ulps, \
                f"{name}: validator error {validation.max_err} above " \
                f"certified bound {result.bound_ulps} (budget {budget})"
            series.append({
                "budget": budget,
                "bound_ulps": result.bound_ulps,
                "boxes_explored": result.boxes_explored,
                "boxes_pruned": result.boxes_pruned,
                "wall_time": result.wall_time,
                "termination": result.termination,
                "max_frontier": result.max_frontier,
            })
            if cert_info is None:
                # Round-trip the first certificate through JSON and the
                # independent checker.
                cert = verifier.certificate(result, config=config)
                roundtrip = Certificate.from_json(cert.to_json())
                assert roundtrip == cert, f"{name}: certificate round trip"
                report = checker.check(roundtrip, spec.program, rewrite)
                assert report.ok, \
                    f"{name}: certificate rejected: {report.failures}"
                cert_info = {
                    "leaves": len(cert.leaves),
                    "size_bytes": cert.size_bytes,
                    "rechecked_bound": report.rechecked_bound,
                }
        curves.append({"jobs": resolved, "series": series})

    # Monotonicity on the serial curve: more budget never loosens.
    serial = curves[0]["series"]
    for a, b in zip(serial, serial[1:]):
        assert b["bound_ulps"] <= a["bound_ulps"] * (1 + 1e-12), \
            f"{name}: bound loosened from budget {a['budget']} to " \
            f"{b['budget']}"

    return {
        "kernel": name,
        "loc": spec.loc,
        "rewrite_degree": REDUCED_DEGREE[name],
        "validator_max_err": validation.max_err,
        "validator_converged": validation.converged,
        "seed_proposals": seed_proposals,
        "curves": curves,
        "certificate": cert_info,
        "tightening_64_to_max": (
            serial[0]["bound_ulps"] / serial[-1]["bound_ulps"]
            if serial[-1]["bound_ulps"] else 1.0),
    }


def run_baseline(kernels=("exp", "log"), budgets=BUDGETS,
                 seed_proposals=SEED_PROPOSALS):
    rows = [measure_kernel(name, budgets=budgets,
                           seed_proposals=seed_proposals)
            for name in kernels]
    return {
        "benchmark": "bnb_soundness",
        "budgets": list(budgets),
        "note": "certified bound vs box budget, 1 vs N workers; every "
                "bound is asserted to dominate a seeded MCMC validation "
                "run, and one certificate per kernel is round-tripped "
                "through JSON and the independent checker.",
        "results": rows,
    }


@pytest.mark.parametrize("name", ("exp", "log"))
@pytest.mark.parametrize("budget", (64, 256))
def test_bnb_bound(benchmark, name, budget):
    spec, rewrite = _setup(name)
    verifier = BnBVerifier(spec.program, rewrite, spec.live_outs,
                           dict(spec.ranges))
    result = benchmark.pedantic(
        verifier.run, args=(BnBConfig(max_boxes=budget, jobs=1),),
        rounds=1, iterations=1)
    benchmark.extra_info["bound_ulps"] = result.bound_ulps
    benchmark.extra_info["boxes_explored"] = result.boxes_explored
    assert result.complete


def main():
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", nargs="*", default=["exp", "log"])
    parser.add_argument("--budgets", nargs="*", type=int,
                        default=list(BUDGETS))
    parser.add_argument("--seed-proposals", type=int,
                        default=SEED_PROPOSALS)
    parser.add_argument("--out", default="BENCH_soundness.json")
    parser.add_argument("--min-tightening", type=float, default=0.0,
                        help="fail unless every kernel's serial bound "
                             "tightens by at least this factor from the "
                             "smallest to the largest budget")
    args = parser.parse_args()
    try:
        baseline = run_baseline(kernels=args.kernels,
                                budgets=tuple(args.budgets),
                                seed_proposals=args.seed_proposals)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        sys.exit(1)
    with open(args.out, "w") as fh:
        json.dump(baseline, fh, indent=2)
        fh.write("\n")
    failed = []
    for row in baseline["results"]:
        serial = row["curves"][0]["series"]
        print(f"{row['kernel']:>7}: validator {row['validator_max_err']:,.0f} "
              f"ULPs <= certified " +
              " -> ".join(f"{p['bound_ulps']:.3e}@{p['budget']}"
                          for p in serial) +
              f" ({row['tightening_64_to_max']:.1f}x tightening, "
              f"cert {row['certificate']['size_bytes']:,}B "
              f"{row['certificate']['leaves']} leaves)")
        if row["tightening_64_to_max"] < args.min_tightening:
            failed.append(row["kernel"])
    print(f"wrote {args.out}")
    if failed:
        print(f"FAIL: {', '.join(failed)} below "
              f"{args.min_tightening:.1f}x tightening floor",
              file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
