"""E4/E5 (Figure 5): the S3D diffusion leaf task.

Paper shape: increasing eta shrinks and speeds up the exp kernel; the
diffusion task tolerates reduced precision up to a threshold (their
instance: eta = 1e7, a 2x exp kernel, and a 27% full-task speedup by
Amdahl's law).
"""

import random

import pytest

from repro.core import CostConfig, SearchConfig, Stoke
from repro.kernels import exp_s3d_kernel, lift_kernel
from repro.kernels.s3d import (
    aggregate_error,
    reference_diffusion,
    run_diffusion,
    task_speedup,
    tolerates,
)

from _util import SEARCH_PROPOSALS, TESTCASES, one_shot

ETAS = (1.0e0, 1.0e9, 1.0e15)


@pytest.mark.parametrize("eta", ETAS,
                         ids=[f"eta1e{len(str(int(e))) - 1}" for e in ETAS])
def test_diffusion_point(benchmark, eta):
    spec = exp_s3d_kernel()
    tests = spec.testcases(random.Random(0), TESTCASES)
    reference = reference_diffusion(n=4)

    def run_point():
        stoke = Stoke(spec.program, tests, spec.live_outs,
                      CostConfig(eta=eta, k=1.0))
        result = stoke.optimize(SearchConfig(proposals=SEARCH_PROPOSALS,
                                             seed=1))
        rewrite = result.best_correct or spec.program
        task = run_diffusion(lift_kernel(spec, rewrite), n=4)
        return result, rewrite, task

    result, rewrite, task = one_shot(benchmark, run_point)
    benchmark.extra_info.update({
        "rewrite_loc": rewrite.loc,
        "exp_speedup": round(result.speedup(), 3),
        "task_speedup": round(task_speedup(result.speedup()), 3),
        "aggregate_error": f"{aggregate_error(task, reference):.2e}",
        "tolerated": tolerates(task, reference),
    })


def test_diffusion_leaf_task(benchmark):
    """The leaf task itself, with the full-precision simulated kernel."""
    kernel = lift_kernel(exp_s3d_kernel())
    result = benchmark.pedantic(run_diffusion, args=(kernel,),
                                kwargs={"n": 4}, rounds=2, iterations=1)
    benchmark.extra_info["aggregate"] = f"{result.aggregate:.6f}"
