"""Incremental (checkpointed-prefix) evaluation: throughput and identity.

Every MCMC proposal edits one or two instructions, so the machine state
reaching the first edited slot is identical between the proposal and the
chain's current program.  The incremental evaluator checkpoints pooled
per-test states at ``~sqrt(n)`` stride boundaries and re-executes only
``[boundary, end)`` — results are bit-identical to full evaluation by
construction, which this benchmark *asserts* (same-seed searches with
the path on and off must produce the same best cost, trace, and accept
counts) before reporting any number.

Measurement protocol: full/incremental runs are interleaved round-robin
and the best rate per mode is kept, so CPU frequency drift between reps
cannot masquerade as a speedup.

As a script it writes the ``BENCH_incremental.json`` baseline consumed
by CI and fails if fewer than ``--min-kernels`` kernels reach the
``--min-speedup`` throughput ratio::

    PYTHONPATH=src python benchmarks/bench_incremental.py \\
        --proposals 4000 --out BENCH_incremental.json \\
        --min-speedup 1.5 --min-kernels 3

Under pytest it doubles as a pytest-benchmark suite
(``pytest benchmarks/bench_incremental.py --benchmark-only``).
"""

import json
import random
import sys

import pytest

from repro.core.cost import CostConfig
from repro.core.search import SearchConfig, Stoke
from repro.kernels.libimf import LIBIMF_KERNELS
from repro.x86.checkpoint import clear_checkpoint_store
from repro.x86.jit import clear_compile_cache

PROPOSALS = 4000
TESTS = 16
REPEATS = 3
SEED = 11


def _search(spec, cases, proposals, incremental, seed=SEED):
    # Same-seed repeats replay the identical proposal stream, so a warm
    # global compile cache would hand the full path every compile for
    # free — a real search never revisits its novel proposals.  Both
    # caches start cold on every run, for both modes.
    clear_compile_cache()
    clear_checkpoint_store()
    stoke = Stoke(spec.program, cases, spec.live_outs, CostConfig(k=1.0))
    config = SearchConfig(proposals=proposals, seed=seed,
                          incremental=incremental)
    return stoke.optimize(config)


@pytest.mark.parametrize("name", ("sin", "exp", "tan"))
@pytest.mark.parametrize("incremental", (False, True),
                         ids=("full", "incremental"))
def test_search_throughput(benchmark, name, incremental):
    spec = LIBIMF_KERNELS[name]()
    cases = spec.testcases(random.Random(0), TESTS)
    result = benchmark(_search, spec, cases, 800, incremental)
    benchmark.extra_info["incremental"] = dict(result.stats.incremental)
    benchmark.extra_info["proposals_per_second"] = \
        result.stats.proposals_per_second


def measure_kernel(name, proposals=PROPOSALS, tests=TESTS, repeats=REPEATS):
    """Interleaved full-vs-incremental rates for one kernel.

    Returns the JSON row; raises AssertionError if any same-seed pair of
    runs diverges in cost, trace, or acceptance — the speedup is only
    reportable while the fast path stays bit-identical.
    """
    spec = LIBIMF_KERNELS[name]()
    cases = spec.testcases(random.Random(0), tests)
    best = {False: 0.0, True: 0.0}
    reference = {}
    for _ in range(repeats):
        for mode in (False, True):
            result = _search(spec, cases, proposals, mode)
            rate = result.stats.proposals_per_second
            if rate > best[mode]:
                best[mode] = rate
            previous = reference.setdefault(mode, result)
            assert result.best_cost == previous.best_cost, \
                f"{name}: non-deterministic search (incremental={mode})"
    full, inc = reference[False], reference[True]
    assert inc.best_cost == full.best_cost, \
        f"{name}: incremental best_cost diverged"
    assert inc.trace == full.trace, f"{name}: incremental trace diverged"
    assert inc.stats.accepted == full.stats.accepted, \
        f"{name}: incremental acceptance diverged"
    assert inc.best_correct_latency == full.best_correct_latency, \
        f"{name}: incremental best-correct diverged"
    evaluated = inc.stats.incremental["hits"] + \
        inc.stats.incremental["fallbacks"]
    return {
        "kernel": name,
        "slots": len(spec.program.slots),
        "proposals": proposals,
        "tests": tests,
        "full_proposals_per_sec": best[False],
        "incremental_proposals_per_sec": best[True],
        "speedup": best[True] / best[False],
        "incremental_hit_fraction": (
            inc.stats.incremental["hits"] / evaluated if evaluated else 0.0),
        "incremental_stats": dict(inc.stats.incremental),
    }


def run_baseline(proposals=PROPOSALS, tests=TESTS, repeats=REPEATS,
                 kernels=None):
    rows = [measure_kernel(name, proposals=proposals, tests=tests,
                           repeats=repeats)
            for name in (kernels or sorted(LIBIMF_KERNELS))]
    return {
        "benchmark": "incremental_suffix_evaluation",
        "proposals": proposals,
        "tests_per_kernel": tests,
        "repeats": repeats,
        "note": "full/incremental interleaved round-robin, best-of rates; "
                "every pair of same-seed runs is asserted bit-identical "
                "(best cost, trace, accept counts) before rates are "
                "reported.",
        "results": rows,
        "max_speedup": max(r["speedup"] for r in rows),
        "median_speedup": sorted(r["speedup"] for r in rows)[len(rows) // 2],
    }


def main():
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--proposals", type=int, default=PROPOSALS)
    parser.add_argument("--tests", type=int, default=TESTS)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--kernels", nargs="*", default=None)
    parser.add_argument("--out", default="BENCH_incremental.json")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="per-kernel throughput ratio floor")
    parser.add_argument("--min-kernels", type=int, default=0,
                        help="fail unless at least this many kernels "
                             "reach --min-speedup (CI regression floor)")
    args = parser.parse_args()
    baseline = run_baseline(proposals=args.proposals, tests=args.tests,
                            repeats=args.repeats, kernels=args.kernels)
    with open(args.out, "w") as fh:
        json.dump(baseline, fh, indent=2)
        fh.write("\n")
    for row in baseline["results"]:
        print(f"{row['kernel']:>4} ({row['slots']} slots): "
              f"full {row['full_proposals_per_sec']:,.0f} | "
              f"incremental {row['incremental_proposals_per_sec']:,.0f} p/s "
              f"({row['speedup']:.2f}x, "
              f"{row['incremental_hit_fraction']:.0%} hits)")
    print(f"wrote {args.out}")
    reached = sum(r["speedup"] >= args.min_speedup
                  for r in baseline["results"])
    if reached < args.min_kernels:
        print(f"FAIL: only {reached} kernel(s) reached "
              f"{args.min_speedup:.2f}x (need {args.min_kernels})",
              file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
