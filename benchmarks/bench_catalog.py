"""Catalog serving costs: assembly, single-kernel lookups, workload
selection.

The catalog is the artifact the whole pipeline exists to produce, and
it is read far more often than it is built: every deployment decision
is a ``fastest_under`` lookup or a ``select_for_budget`` composition.
This benchmark builds a synthetic catalog (no search has to run — the
frontier code consumes result documents) and enforces a throughput
floor on the lookup path.  As a script it writes the
``BENCH_catalog.json`` baseline consumed by CI::

    PYTHONPATH=src python benchmarks/bench_catalog.py \\
        --out BENCH_catalog.json

Under pytest it doubles as a pytest-benchmark suite
(``pytest benchmarks/bench_catalog.py --benchmark-only``).
"""

import hashlib
import json
import random
import time

from repro.catalog import (
    assemble_catalog,
    catalog_digest,
    fastest_under,
    select_for_budget,
)
from repro.catalog.frontier import program_text_digest

KERNELS = 12
ETAS = 16
MIN_LOOKUPS_PER_SEC = 2_000.0
MIN_SELECTS_PER_SEC = 50.0


def synthetic_catalog(kernels=KERNELS, etas=ETAS, seed=0):
    """A catalog body with a plausible error/latency trade-off curve:
    per kernel, rising eta buys latency at a rising certified bound,
    with jittered points so some cells land off the frontier."""
    rng = random.Random(seed)
    cells, docs = [], {}
    for k in range(kernels):
        name = f"kernel{k:02d}"
        target_latency = 200 + 10 * k
        for i in range(etas):
            eta = float(10 ** i if i else 0)
            text = f"{name}/rewrite{i}"
            latency = max(10, int(target_latency
                                  - (target_latency - 20) * i / etas
                                  + rng.randint(-15, 15)))
            sel_digest = hashlib.sha256(
                f"sel/{name}/{i}".encode()).hexdigest()
            ver_digest = hashlib.sha256(
                f"ver/{name}/{i}".encode()).hexdigest()
            docs[sel_digest] = {
                "best_correct": {"text": text},
                "latency": latency,
                "target_latency": target_latency,
            }
            if i == 0:
                docs[ver_digest] = {
                    "engine": "uf", "proved": True,
                    "rewrite_digest": program_text_digest(text),
                    "target_digest": "t" * 64,
                }
            else:
                docs[ver_digest] = {
                    "engine": "bnb",
                    "bound_ulps": float(2 ** i) * rng.uniform(0.5, 1.5),
                    "rewrite_digest": program_text_digest(text),
                    "target_digest": "t" * 64,
                    "certificate_digest": "c" * 64,
                }
            cells.append((name, eta, sel_digest, ver_digest))
    return assemble_catalog(cells, docs)


def _lookup_throughput(body, queries=5_000, seed=1):
    rng = random.Random(seed)
    names = sorted(body["kernels"])
    budgets = [0.0, 1.0, 64.0, 4096.0, 1e9]
    start = time.perf_counter()
    for _ in range(queries):
        fastest_under(body, rng.choice(names), rng.choice(budgets))
    return queries / (time.perf_counter() - start)


def _select_throughput(body, selects=200, seed=2):
    rng = random.Random(seed)
    names = sorted(body["kernels"])
    workload = {name: 1 + i % 4 for i, name in enumerate(names[:6])}
    start = time.perf_counter()
    for _ in range(selects):
        select_for_budget(body, workload, rng.choice([0.0, 100.0, 1e6]))
    return selects / (time.perf_counter() - start)


def test_assemble(benchmark):
    body = benchmark(synthetic_catalog)
    benchmark.extra_info.update({
        "kernels": len(body["kernels"]),
        "cells": body["cells"],
        "digest": catalog_digest(body)[:16],
    })


def test_lookup_floor(benchmark):
    body = synthetic_catalog()
    rate = benchmark.pedantic(_lookup_throughput, args=(body,),
                              kwargs={"queries": 2_000},
                              rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["lookups_per_sec"] = round(rate)
    assert rate >= MIN_LOOKUPS_PER_SEC


def test_select_floor(benchmark):
    body = synthetic_catalog()
    rate = benchmark.pedantic(_select_throughput, args=(body,),
                              rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["selects_per_sec"] = round(rate)
    assert rate >= MIN_SELECTS_PER_SEC


def run_baseline(kernels=KERNELS, etas=ETAS, queries=5_000, selects=200,
                 min_lookups=MIN_LOOKUPS_PER_SEC,
                 min_selects=MIN_SELECTS_PER_SEC):
    start = time.perf_counter()
    body = synthetic_catalog(kernels=kernels, etas=etas)
    build_seconds = time.perf_counter() - start
    lookups = _lookup_throughput(body, queries=queries)
    sel_rate = _select_throughput(body, selects=selects)
    if lookups < min_lookups:
        raise AssertionError(
            f"lookup throughput {lookups:,.0f}/s is below the "
            f"{min_lookups:,.0f}/s floor")
    if sel_rate < min_selects:
        raise AssertionError(
            f"selection throughput {sel_rate:,.0f}/s is below the "
            f"{min_selects:,.0f}/s floor")
    frontier = sum(
        sum(1 for e in k["entries"] if e["on_frontier"])
        for k in body["kernels"].values())
    return {
        "benchmark": "catalog_serving_throughput",
        "kernels": kernels,
        "etas_per_kernel": etas,
        "cells": body["cells"],
        "frontier_entries": frontier,
        "digest": catalog_digest(body),
        "build_seconds": build_seconds,
        "lookups_per_sec": lookups,
        "lookup_floor_per_sec": min_lookups,
        "selects_per_sec": sel_rate,
        "select_floor_per_sec": min_selects,
        "note": "synthetic catalog (no search): fastest_under over "
                "random (kernel, budget) pairs, select_for_budget over "
                "a 6-kernel workload.",
    }


def main():
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", type=int, default=KERNELS)
    parser.add_argument("--etas", type=int, default=ETAS)
    parser.add_argument("--queries", type=int, default=5_000)
    parser.add_argument("--selects", type=int, default=200)
    parser.add_argument("--min-lookups", type=float,
                        default=MIN_LOOKUPS_PER_SEC)
    parser.add_argument("--min-selects", type=float,
                        default=MIN_SELECTS_PER_SEC)
    parser.add_argument("--out", default="BENCH_catalog.json")
    args = parser.parse_args()
    baseline = run_baseline(kernels=args.kernels, etas=args.etas,
                            queries=args.queries, selects=args.selects,
                            min_lookups=args.min_lookups,
                            min_selects=args.min_selects)
    with open(args.out, "w") as fh:
        json.dump(baseline, fh, indent=2)
        fh.write("\n")
    print(f"catalog {baseline['digest'][:16]}: "
          f"{baseline['cells']} cells, "
          f"{baseline['frontier_entries']} frontier entries")
    print(f"lookups: {baseline['lookups_per_sec']:,.0f}/s "
          f"(floor {baseline['lookup_floor_per_sec']:,.0f}/s)  "
          f"selects: {baseline['selects_per_sec']:,.0f}/s "
          f"(floor {baseline['select_floor_per_sec']:,.0f}/s)")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
