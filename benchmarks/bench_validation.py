"""Validation-path benchmarks: err() throughput and Geweke overhead.

Paper: MCMC validation converges in under 100M proposals with runtimes
under a minute; the termination test is the Geweke diagnostic.

The block benchmarks cover speculative block evaluation
(``Validator.err_block`` / ``ValidationConfig.max_block``): proposals
are evaluated through one batched executor call per block instead of
two executions per sample, and the chain un-speculates nothing for
independent-draw strategies (``rand``) while MCMC pays only for the
samples a Geweke break discards.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.harness.figure10 import _reduced_precision_rewrite
from repro.kernels.libimf import sin_kernel
from repro.validation import ValidationConfig, Validator
from repro.validation.geweke import geweke_z
from repro.validation.proposals import TestCaseProposer
from repro.validation.strategies import make_validation_strategy

from _util import VALIDATION_PROPOSALS, one_shot


def _validator():
    spec = sin_kernel()
    return Validator(spec.program, _reduced_precision_rewrite("sin"),
                     spec.live_outs, dict(spec.ranges), spec.base_testcase)


def test_err_evaluation(benchmark):
    """Equation 13: one error-function sample (two executions + ULPs)."""
    validator = _validator()
    test = sin_kernel().base_testcase()
    err = benchmark(validator.err, test)
    benchmark.extra_info["err_ulps"] = f"{err:.3e}"


def test_validation_run_to_convergence(benchmark):
    validator = _validator()

    def validate():
        return validator.validate(ValidationConfig(
            max_proposals=VALIDATION_PROPOSALS, min_samples=500,
            check_interval=250, seed=2))

    result = one_shot(benchmark, validate)
    benchmark.extra_info.update({
        "samples": result.samples,
        "converged": result.converged,
        "max_err": f"{result.max_err:.3e}",
    })


def test_geweke_diagnostic(benchmark):
    chain = np.random.default_rng(0).standard_normal(5000)
    z = benchmark(geweke_z, chain)
    benchmark.extra_info["z"] = round(float(z), 3)


def _proposal_block(count, seed=7):
    spec = sin_kernel()
    proposer = TestCaseProposer(dict(spec.ranges))
    import random as _random

    rng = _random.Random(seed)
    current = proposer.initial(rng, spec.base_testcase())
    block = []
    for _ in range(count):
        current = proposer.propose(rng, current)
        block.append(current)
    return block


@pytest.mark.parametrize("block", (1, 8, 64))
def test_err_block_evaluation(benchmark, block):
    """Per-evaluation cost of the batched error path at block sizes."""
    validator = _validator()
    tests = _proposal_block(block)
    if block == 1:
        benchmark(validator.err, tests[0])
    else:
        benchmark(validator.err_block, tests)
    benchmark.extra_info["evals_per_round"] = block


@pytest.mark.parametrize("strategy", ("rand", "mcmc"))
@pytest.mark.parametrize("max_block", (1, 64), ids=("scalar", "block"))
def test_validation_block_throughput(benchmark, strategy, max_block):
    """Whole validation runs, speculative block vs scalar dispatch."""
    validator = _validator()
    config = ValidationConfig(
        max_proposals=VALIDATION_PROPOSALS, min_samples=500,
        check_interval=250, seed=2, max_block=max_block)

    def validate():
        return validator.validate(replace(config),
                                  make_validation_strategy(strategy))

    result = one_shot(benchmark, validate)
    benchmark.extra_info.update({
        "samples": result.samples,
        "evaluations": result.evaluations,
        "wasted": result.wasted,
        "max_err": f"{result.max_err:.3e}",
    })
