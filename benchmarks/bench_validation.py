"""Validation-path benchmarks: err() throughput and Geweke overhead.

Paper: MCMC validation converges in under 100M proposals with runtimes
under a minute; the termination test is the Geweke diagnostic.
"""

import numpy as np

from repro.harness.figure10 import _reduced_precision_rewrite
from repro.kernels.libimf import sin_kernel
from repro.validation import ValidationConfig, Validator
from repro.validation.geweke import geweke_z

from _util import VALIDATION_PROPOSALS, one_shot


def _validator():
    spec = sin_kernel()
    return Validator(spec.program, _reduced_precision_rewrite("sin"),
                     spec.live_outs, dict(spec.ranges), spec.base_testcase)


def test_err_evaluation(benchmark):
    """Equation 13: one error-function sample (two executions + ULPs)."""
    validator = _validator()
    test = sin_kernel().base_testcase()
    err = benchmark(validator.err, test)
    benchmark.extra_info["err_ulps"] = f"{err:.3e}"


def test_validation_run_to_convergence(benchmark):
    validator = _validator()

    def validate():
        return validator.validate(ValidationConfig(
            max_proposals=VALIDATION_PROPOSALS, min_samples=500,
            check_interval=250, seed=2))

    result = one_shot(benchmark, validate)
    benchmark.extra_info.update({
        "samples": result.samples,
        "converged": result.converged,
        "max_err": f"{result.max_err:.3e}",
    })


def test_geweke_diagnostic(benchmark):
    chain = np.random.default_rng(0).standard_normal(5000)
    z = benchmark(geweke_z, chain)
    benchmark.extra_info["z"] = round(float(z), 3)
