"""E2/E3 (Figure 4): LOC/speedup vs eta for the libimf kernels.

Paper shape: increasing eta lets the search interpolate between double-,
single- and half-precision implementations, shrinking LOC and growing
speedup up to ~6x at extreme eta.  Each benchmark runs one (kernel, eta)
search point and records LOC/speedup in ``extra_info``.
"""

import random

import pytest

from repro.core import CostConfig, SearchConfig, Stoke
from repro.kernels.libimf import LIBIMF_KERNELS

from _util import SEARCH_PROPOSALS, TESTCASES, one_shot

POINTS = [
    ("sin", 1.0e0), ("sin", 1.0e12), ("sin", 1.0e16),
    ("log", 1.0e0), ("log", 1.0e12),
    ("tan", 1.0e0), ("tan", 1.0e12),
]


@pytest.mark.parametrize("name,eta", POINTS,
                         ids=[f"{n}-eta1e{len(str(int(e))) - 1}"
                              for n, e in POINTS])
def test_eta_sweep_point(benchmark, name, eta):
    spec = LIBIMF_KERNELS[name]()
    tests = spec.testcases(random.Random(0), TESTCASES)

    def search():
        stoke = Stoke(spec.program, tests, spec.live_outs,
                      CostConfig(eta=eta, k=1.0))
        return stoke.optimize(SearchConfig(proposals=SEARCH_PROPOSALS,
                                           seed=11))

    result = one_shot(benchmark, search)
    best = result.best_correct
    benchmark.extra_info.update({
        "target_loc": spec.loc,
        "rewrite_loc": best.loc if best else spec.loc,
        "speedup": round(result.speedup(), 3),
        "proposals_per_sec": round(result.stats.proposals_per_second),
    })


def test_error_curve_evaluation(benchmark):
    """Figure 4d-f: evaluating a rewrite's ULP error curve."""
    from repro.harness.figure4 import error_curve
    from repro.kernels.libimf import sin_kernel

    spec = sin_kernel()
    low = sin_kernel(degree=5)
    curve = benchmark(error_curve, spec, low.program, 100)
    benchmark.extra_info["max_ulp_error"] = max(e for _, e in curve)
