"""E1 (Section 5.1): test-case dispatch throughput, emulator vs JIT.

Paper: the JIT-assembler evaluator dispatches ~1M tests/sec and is up to
two orders of magnitude faster than the emulator-based original STOKE.
Reproduced shape: the JIT backend beats the emulator by >10x on every
libimf kernel (absolute rates are Python-scale).
"""

import random

import pytest

from repro.kernels.libimf import LIBIMF_KERNELS
from repro.x86.emulator import Emulator
from repro.x86.jit import compile_program

KERNELS = ("sin", "log", "exp")


def _states(name, count=64):
    spec = LIBIMF_KERNELS[name]()
    cases = spec.testcases(random.Random(0), count)
    return spec, [tc.build_state() for tc in cases]


@pytest.mark.parametrize("name", KERNELS)
def test_emulator_dispatch(benchmark, name):
    spec, states = _states(name)
    emulator = Emulator()

    def dispatch():
        for state in states:
            emulator.run(spec.program, state.copy())

    benchmark(dispatch)
    benchmark.extra_info["tests_per_round"] = len(states)
    benchmark.extra_info["backend"] = "emulator"


@pytest.mark.parametrize("name", KERNELS)
def test_jit_dispatch(benchmark, name):
    spec, states = _states(name)
    compiled = compile_program(spec.program)

    def dispatch():
        for state in states:
            compiled.run(state.copy())

    benchmark(dispatch)
    benchmark.extra_info["tests_per_round"] = len(states)
    benchmark.extra_info["backend"] = "jit"


def test_jit_compilation(benchmark):
    """One-time compilation cost per proposal (amortized by the cache)."""
    spec = LIBIMF_KERNELS["sin"]()
    from repro.x86.jit import CompiledProgram

    benchmark(CompiledProgram, spec.program)
