"""E1 (Section 5.1): test-case dispatch throughput, emulator vs JIT.

Paper: the JIT-assembler evaluator dispatches ~1M tests/sec and is up to
two orders of magnitude faster than the emulator-based original STOKE.
Reproduced shape: the JIT backend beats the emulator by >10x on every
libimf kernel (absolute rates are Python-scale).

Three JIT evaluator styles are measured so the batched-evaluator speedup
stays pinned as a regression baseline.  Each one covers the full
per-test evaluator path — state setup, execution, live-out read-back:

* ``baseline`` — a reconstruction of the pre-batching ``Runner.run``
  loop: one ``MachineState`` template copy per test, one Python-level
  ``run`` call, and a ``loc.read`` dict comprehension for the live-outs.
* ``sequential`` — ``Runner.run_values`` per test: pooled reset-in-place
  states plus precompiled live-out readers (state-pool win only).
* ``batched`` — ``Runner.run_batch``: the whole test set inside one
  specialized compiled-function call over pooled states.

As a script it writes the ``BENCH_throughput.json`` baseline consumed by
CI and fails if the JIT/emulator ratio or the batched-over-baseline
speedup drop below their floors::

    PYTHONPATH=src python benchmarks/bench_throughput.py \\
        --out BENCH_throughput.json --min-ratio 5 --min-batch-speedup 1.5

Under pytest it doubles as a pytest-benchmark suite
(``pytest benchmarks/bench_throughput.py --benchmark-only``).
"""

import json
import random
import sys
import time

import pytest

from repro.core.runner import Runner
from repro.kernels.libimf import LIBIMF_KERNELS
from repro.x86.emulator import Emulator
from repro.x86.jit import compile_program

KERNELS = ("sin", "log", "exp")
TESTS = 300
REPEATS = 3


def _cases(name, count):
    spec = LIBIMF_KERNELS[name]()
    return spec, spec.testcases(random.Random(0), count)


@pytest.mark.parametrize("name", KERNELS)
def test_emulator_dispatch(benchmark, name):
    spec, cases = _cases(name, 64)
    emulator = Emulator()

    def dispatch():
        for tc in cases:
            emulator.run(spec.program, tc.pooled_state())

    benchmark(dispatch)
    benchmark.extra_info["tests_per_round"] = len(cases)
    benchmark.extra_info["backend"] = "emulator"


@pytest.mark.parametrize("name", KERNELS)
def test_jit_dispatch(benchmark, name):
    spec, cases = _cases(name, 64)
    compiled = compile_program(spec.program)

    def dispatch():
        for tc in cases:
            compiled.run(tc.pooled_state(compiled.writes))

    benchmark(dispatch)
    benchmark.extra_info["tests_per_round"] = len(cases)
    benchmark.extra_info["backend"] = "jit"


@pytest.mark.parametrize("name", KERNELS)
def test_jit_batched_dispatch(benchmark, name):
    spec, cases = _cases(name, 64)
    compiled = compile_program(spec.program)
    compiled.specialize_batch()  # steady-state path, not the tier-up ramp

    def dispatch():
        compiled.run_batch(
            [tc.pooled_state(compiled.writes) for tc in cases])

    benchmark(dispatch)
    benchmark.extra_info["tests_per_round"] = len(cases)
    benchmark.extra_info["backend"] = "jit-batched"


def test_jit_compilation(benchmark):
    """One-time compilation cost per proposal (amortized by the cache)."""
    spec = LIBIMF_KERNELS["sin"]()
    from repro.x86.jit import CompiledProgram

    benchmark(CompiledProgram, spec.program)


def _best_rates(fns, tests, repeats):
    """Best-of-``repeats`` rate for each fn, measured round-robin.

    Interleaving the candidates inside each round (instead of timing one
    fn to completion before the next) keeps CPU frequency drift from
    biasing whichever style happens to be measured last.
    """
    best = {label: float("inf") for label, _ in fns}
    for _ in range(repeats):
        for label, fn in fns:
            start = time.perf_counter()
            fn()
            best[label] = min(best[label], time.perf_counter() - start)
    return {label: tests / elapsed for label, elapsed in best.items()}


def measure_kernel_rates(name, tests=TESTS, repeats=REPEATS):
    """All four evaluator rates for one kernel, in tests/sec."""
    spec, cases = _cases(name, tests)
    emulator = Emulator()
    runner = Runner(spec.live_outs, backend="jit")
    compiled = runner.prepare(spec.program)
    compiled.specialize_batch()
    live_outs = runner.live_outs

    def emulator_dispatch():
        for tc in cases:
            emulator.run(spec.program, tc.pooled_state())

    def jit_baseline_dispatch():
        # The pre-batching Runner.run loop: a fresh template copy and a
        # per-location dict read-back for every single test.
        for tc in cases:
            state = tc.build_state()
            if compiled.run(state).ok:
                {loc: loc.read(state) for loc in live_outs}

    def jit_sequential_dispatch():
        for tc in cases:
            runner.run_values(compiled, tc)

    def jit_batched_dispatch():
        runner.run_batch(compiled, cases)

    # Differential guard: the batched path must reproduce the sequential
    # live-out bits exactly (the test suite checks this exhaustively;
    # here it protects the benchmark numbers themselves).
    expected = []
    for tc in cases:
        state = tc.build_state()
        compiled.run(state)
        expected.append((list(state.gp), list(state.xmm_lo),
                         list(state.xmm_hi)))
    states = [tc.pooled_state() for tc in cases]
    compiled.run_batch(states)
    for state, (gp, lo, hi) in zip(states, expected):
        assert (state.gp, state.xmm_lo, state.xmm_hi) == (gp, lo, hi), \
            f"batched dispatch diverged from sequential on {name}"

    rates = _best_rates(
        (("emulator", emulator_dispatch),
         ("jit_baseline", jit_baseline_dispatch),
         ("jit_sequential", jit_sequential_dispatch),
         ("jit_batched", jit_batched_dispatch)),
        tests, repeats)
    return {
        "kernel": name,
        "tests": tests,
        "emulator_tests_per_sec": rates["emulator"],
        "jit_baseline_tests_per_sec": rates["jit_baseline"],
        "jit_sequential_tests_per_sec": rates["jit_sequential"],
        "jit_batched_tests_per_sec": rates["jit_batched"],
    }


def run_baseline(tests=TESTS, repeats=REPEATS):
    """Measure every libimf kernel and return the JSON-ready baseline."""
    rows = []
    for name in LIBIMF_KERNELS:
        row = measure_kernel_rates(name, tests=tests, repeats=repeats)
        row["jit_emulator_ratio"] = (row["jit_batched_tests_per_sec"]
                                     / row["emulator_tests_per_sec"])
        row["batch_speedup_vs_baseline"] = (
            row["jit_batched_tests_per_sec"]
            / row["jit_baseline_tests_per_sec"])
        rows.append(row)
    return {
        "benchmark": "testcase_dispatch_throughput",
        "tests_per_kernel": tests,
        "repeats": repeats,
        "note": "jit_baseline reconstructs the pre-batching Runner.run "
                "loop on the current tree; it understates the full PR-2 "
                "gain because the baseline also benefits from the inlined "
                "bits<->float conversions (measured against the actual "
                "pre-PR checkout, the batched evaluator is 2.2-4.4x).",
        "results": rows,
        "min_jit_emulator_ratio": min(r["jit_emulator_ratio"]
                                      for r in rows),
        "min_batch_speedup_vs_baseline": min(
            r["batch_speedup_vs_baseline"] for r in rows),
    }


def main():
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tests", type=int, default=TESTS)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--out", default="BENCH_throughput.json")
    parser.add_argument("--min-ratio", type=float, default=0.0,
                        help="fail if JIT-batched/emulator drops below "
                             "this on any kernel (CI regression floor)")
    parser.add_argument("--min-batch-speedup", type=float, default=0.0,
                        help="fail if batched/pre-batching-baseline drops "
                             "below this on any kernel")
    args = parser.parse_args()
    baseline = run_baseline(tests=args.tests, repeats=args.repeats)
    with open(args.out, "w") as fh:
        json.dump(baseline, fh, indent=2)
        fh.write("\n")
    for row in baseline["results"]:
        print(f"{row['kernel']}: emulator {row['emulator_tests_per_sec']:,.0f}"
              f" | jit {row['jit_sequential_tests_per_sec']:,.0f}"
              f" | jit-batched {row['jit_batched_tests_per_sec']:,.0f} t/s"
              f" ({row['jit_emulator_ratio']:.1f}x emulator, "
              f"{row['batch_speedup_vs_baseline']:.2f}x pre-batching)")
    print(f"wrote {args.out}")
    failed = False
    if baseline["min_jit_emulator_ratio"] < args.min_ratio:
        print(f"FAIL: JIT/emulator ratio "
              f"{baseline['min_jit_emulator_ratio']:.2f} "
              f"< floor {args.min_ratio}", file=sys.stderr)
        failed = True
    if baseline["min_batch_speedup_vs_baseline"] < args.min_batch_speedup:
        print(f"FAIL: batch speedup "
              f"{baseline['min_batch_speedup_vs_baseline']:.2f} "
              f"< floor {args.min_batch_speedup}", file=sys.stderr)
        failed = True
    if failed:
        sys.exit(1)


if __name__ == "__main__":
    main()
