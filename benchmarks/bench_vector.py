"""Vector (SoA) backend throughput vs the JIT's batched evaluator.

The vector backend executes a whole test set as numpy operations over a
test-vector axis (see ``repro.x86.vector``), replacing the JIT's
per-test Python dispatch with a handful of C-level array operations per
instruction.  This benchmark pins that win as a regression floor: on the
libimf kernels the vector path must stay comfortably ahead of
``jit_batched`` (the previous fastest evaluator) through the full
``Runner.run_batch`` surface — state setup, execution, and live-out
read-back included.

All rates are measured through ``Runner.run_batch``, so backends compete
on the exact path the cost function's full-evaluation loop uses.  A
differential guard asserts the vector live-out bits equal the JIT's
before anything is timed.

As a script it writes the ``BENCH_vector.json`` baseline consumed by CI
and fails if fewer than ``--min-kernels`` kernels reach the
``--min-vector-ratio`` floor::

    PYTHONPATH=src python benchmarks/bench_vector.py \\
        --out BENCH_vector.json --min-vector-ratio 1.5 --min-kernels 3

Under pytest it doubles as a pytest-benchmark suite
(``pytest benchmarks/bench_vector.py --benchmark-only``).
"""

import json
import random
import sys
import time

import pytest

from repro.core.runner import Runner
from repro.kernels.libimf import LIBIMF_KERNELS

KERNELS = tuple(LIBIMF_KERNELS)
TESTS = 1000
REPEATS = 5


def _cases(name, count):
    spec = LIBIMF_KERNELS[name]()
    return spec, spec.testcases(random.Random(0), count)


@pytest.mark.parametrize("name", KERNELS)
def test_vector_dispatch(benchmark, name):
    spec, cases = _cases(name, 256)
    runner = Runner(spec.live_outs, backend="vector")
    prepared = runner.prepare(spec.program)
    runner.run_batch(prepared, cases)  # warm the pack cache

    benchmark(runner.run_batch, prepared, cases)
    benchmark.extra_info["tests_per_round"] = len(cases)
    benchmark.extra_info["backend"] = "vector"
    benchmark.extra_info["vector_coverage"] = prepared.vector_coverage


def test_vectorize_translation(benchmark):
    """One-time translation cost per proposal (amortized by the cache)."""
    from repro.x86.vector import VectorizedProgram

    spec = LIBIMF_KERNELS["sin"]()
    benchmark(VectorizedProgram, spec.program)


def _best_rates(fns, tests, repeats):
    """Best-of-``repeats`` rate for each fn, measured round-robin.

    Interleaving the candidates inside each round (instead of timing one
    fn to completion before the next) keeps CPU frequency drift from
    biasing whichever backend happens to be measured last.
    """
    best = {label: float("inf") for label, _ in fns}
    for _ in range(repeats):
        for label, fn in fns:
            start = time.perf_counter()
            fn()
            best[label] = min(best[label], time.perf_counter() - start)
    return {label: tests / elapsed for label, elapsed in best.items()}


def measure_kernel_rates(name, tests=TESTS, repeats=REPEATS):
    """Per-backend ``Runner.run_batch`` rates for one kernel, tests/sec."""
    spec, cases = _cases(name, tests)
    runners = {backend: Runner(spec.live_outs, backend=backend)
               for backend in ("emulator", "jit", "vector")}
    prepared = {backend: runner.prepare(spec.program)
                for backend, runner in runners.items()}
    prepared["jit"].specialize_batch()  # steady state, not the tier-up ramp

    # Differential guard: the vector path must reproduce the JIT's
    # live-out bits exactly (the test suite checks this exhaustively;
    # here it protects the benchmark numbers themselves).
    expected = runners["jit"].run_batch(prepared["jit"], cases)
    got = runners["vector"].run_batch(prepared["vector"], cases)
    assert got == expected, f"vector dispatch diverged from the JIT on {name}"

    fns = tuple(
        (backend, lambda b=backend: runners[b].run_batch(prepared[b], cases))
        for backend in ("emulator", "jit", "vector"))
    rates = _best_rates(fns, tests, repeats)
    return {
        "kernel": name,
        "tests": tests,
        "vector_coverage": prepared["vector"].vector_coverage,
        "emulator_tests_per_sec": rates["emulator"],
        "jit_batched_tests_per_sec": rates["jit"],
        "vector_tests_per_sec": rates["vector"],
    }


def run_baseline(tests=TESTS, repeats=REPEATS):
    """Measure every libimf kernel and return the JSON-ready baseline."""
    rows = []
    for name in KERNELS:
        row = measure_kernel_rates(name, tests=tests, repeats=repeats)
        row["vector_jit_ratio"] = (row["vector_tests_per_sec"]
                                   / row["jit_batched_tests_per_sec"])
        rows.append(row)
    ratios = sorted((r["vector_jit_ratio"] for r in rows), reverse=True)
    return {
        "benchmark": "vector_backend_throughput",
        "tests_per_kernel": tests,
        "repeats": repeats,
        "note": "rates go through Runner.run_batch end to end; "
                "vector_jit_ratio compares the SoA backend against the "
                "JIT's batched evaluator on the same tests.",
        "results": rows,
        "min_vector_jit_ratio": ratios[-1],
        "median_vector_jit_ratio": ratios[len(ratios) // 2],
    }


def main():
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tests", type=int, default=TESTS)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--out", default="BENCH_vector.json")
    parser.add_argument("--min-vector-ratio", type=float, default=0.0,
                        help="the vector/jit_batched floor a kernel must "
                             "reach to count toward --min-kernels")
    parser.add_argument("--min-kernels", type=int, default=3,
                        help="fail unless at least this many kernels reach "
                             "the --min-vector-ratio floor (CI regression "
                             "gate)")
    args = parser.parse_args()
    baseline = run_baseline(tests=args.tests, repeats=args.repeats)
    with open(args.out, "w") as fh:
        json.dump(baseline, fh, indent=2)
        fh.write("\n")
    for row in baseline["results"]:
        print(f"{row['kernel']}: emulator {row['emulator_tests_per_sec']:,.0f}"
              f" | jit-batched {row['jit_batched_tests_per_sec']:,.0f}"
              f" | vector {row['vector_tests_per_sec']:,.0f} t/s"
              f" ({row['vector_jit_ratio']:.2f}x jit-batched, "
              f"coverage {row['vector_coverage']:.2f})")
    print(f"wrote {args.out}")
    if args.min_vector_ratio > 0.0:
        reached = [row["kernel"] for row in baseline["results"]
                   if row["vector_jit_ratio"] >= args.min_vector_ratio]
        print(f"{len(reached)}/{len(baseline['results'])} kernels at or "
              f"above {args.min_vector_ratio:.2f}x: {', '.join(reached)}")
        if len(reached) < args.min_kernels:
            print(f"FAIL: only {len(reached)} kernels reached the "
                  f"{args.min_vector_ratio:.2f}x vector/jit floor "
                  f"(need {args.min_kernels})", file=sys.stderr)
            sys.exit(1)


if __name__ == "__main__":
    main()
