"""E12 (Section 4): the decision-procedure scaling wall.

Paper claim: bit-blasting decision procedures only handle kernels on the
order of five instructions.  Our bounded-exhaustive analogue shows the
same character: exact, but exponential in input resolution (and merely
linear in kernel length, so input width is the binding constraint).
"""

import pytest

from repro.harness.verify_scaling import _poly_kernel
from repro.kernels.libimf import sin_kernel
from repro.verify import exhaustive_check
from repro.x86.testcase import TestCase


@pytest.mark.parametrize("bits", [4, 6, 8])
def test_exhaustive_vs_input_bits(benchmark, bits):
    spec = sin_kernel()
    result = benchmark.pedantic(
        exhaustive_check,
        args=(spec.program, spec.program, spec.live_outs,
              dict(spec.ranges)),
        kwargs={"base_testcase_factory": lambda: TestCase({}),
                "bits_per_input": bits},
        rounds=1, iterations=1)
    benchmark.extra_info["cases"] = result.cases_checked
    assert result.bitwise_equal


@pytest.mark.parametrize("terms", [2, 8, 24])
def test_exhaustive_vs_kernel_length(benchmark, terms):
    program = _poly_kernel(terms)
    result = benchmark.pedantic(
        exhaustive_check,
        args=(program, program, ["xmm0"], {"xmm0": (-1.0, 1.0)}),
        kwargs={"base_testcase_factory": lambda: TestCase({}),
                "bits_per_input": 6},
        rounds=1, iterations=1)
    benchmark.extra_info["instructions"] = program.loc
    benchmark.extra_info["cases"] = result.cases_checked
