"""Batched BnB verifier throughput vs the reference engine.

The batched engine (``BnBConfig(engine='batched')``) runs the sound
branch-and-bound search through translate-once compiled transfers with
prefix sharing between split children and, for ``jobs > 1``, a
speculative worker pipeline whose results are committed in strict
serial heap order.  The reference engine is the historical barriered
search — one box per task through the interpretive transfer — kept as
the identity oracle and as this benchmark's baseline.

Before anything is timed a differential guard asserts the two engines
produce the identical leaf partition and certified bound on every
measured kernel, and that the batched partition is jobs-invariant; a
throughput number for a wrong answer would be meaningless.

As a script it writes the ``BENCH_verify.json`` baseline consumed by
CI and fails if fewer than ``--min-kernels`` kernels reach the
``--min-ratio`` floor at ``jobs=1``::

    PYTHONPATH=src python benchmarks/bench_verify.py \\
        --out BENCH_verify.json --min-ratio 1.5 --min-kernels 3
"""

import json
import sys
import time

from repro.kernels.libimf import LIBIMF_KERNELS
from repro.verify.bnb import BnBConfig, BnBVerifier

KERNELS = tuple(sorted(LIBIMF_KERNELS))
# Degree-reduced rewrites give a real, nonzero approximation error.
REDUCED_DEGREE = {"sin": 9, "cos": 8, "tan": 9, "log": 12, "exp": 8}
BUDGET = 512
REPEATS = 3


def _verifier(name):
    factory = LIBIMF_KERNELS[name]
    spec = factory()
    rewrite = factory(REDUCED_DEGREE[name]).program
    return BnBVerifier(spec.program, rewrite, spec.live_outs,
                       dict(spec.ranges))


def _partition(result):
    return (result.bound_ulps, tuple(result.leaf_bounds),
            tuple(box.bounds for box in result.leaves))


def _best_rate(verifier, config, repeats):
    """Best-of boxes/sec over ``repeats`` runs of one configuration."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        result = verifier.run(config)
        elapsed = time.perf_counter() - start
        best = max(best, result.boxes_explored / elapsed)
    return best


def measure_kernel(name, budget=BUDGET, jobs_list=(1,), repeats=REPEATS):
    """Engine-vs-engine boxes/sec for one kernel at each jobs level."""
    verifier = _verifier(name)

    # Identity guard: identical partition and bound, and a
    # jobs-invariant batched partition, before any timing.
    reference = verifier.run(BnBConfig(max_boxes=budget,
                                       engine="reference"))
    batched = verifier.run(BnBConfig(max_boxes=budget, engine="batched"))
    assert _partition(batched) == _partition(reference), \
        f"batched engine diverged from reference on {name}"
    for jobs in jobs_list:
        if jobs == 1:
            continue
        parallel = verifier.run(BnBConfig(max_boxes=budget,
                                          engine="batched", jobs=jobs))
        assert _partition(parallel) == _partition(batched), \
            f"batched partition depends on jobs={jobs} on {name}"

    row = {"kernel": name, "budget": budget,
           "boxes_explored": batched.boxes_explored,
           "bound_ulps": batched.bound_ulps}
    for jobs in jobs_list:
        ref = _best_rate(verifier, BnBConfig(max_boxes=budget, jobs=jobs,
                                             engine="reference"), repeats)
        bat = _best_rate(verifier, BnBConfig(max_boxes=budget, jobs=jobs,
                                             engine="batched"), repeats)
        row[f"reference_jobs{jobs}_boxes_per_sec"] = ref
        row[f"batched_jobs{jobs}_boxes_per_sec"] = bat
        row[f"ratio_jobs{jobs}"] = bat / ref if ref > 0 else float("inf")
    return row


def run_baseline(kernels=KERNELS, budget=BUDGET, jobs_list=(1,),
                 repeats=REPEATS):
    rows = [measure_kernel(name, budget=budget, jobs_list=jobs_list,
                           repeats=repeats) for name in kernels]
    ratios = sorted((r["ratio_jobs1"] for r in rows), reverse=True)
    return {
        "benchmark": "bnb_verify_throughput",
        "budget": budget,
        "repeats": repeats,
        "jobs": list(jobs_list),
        "note": "boxes/sec through BnBVerifier.run end to end; ratios "
                "compare the batched engine (compiled transfers, prefix "
                "sharing, speculative dispatch) against the reference "
                "engine on identical partitions (asserted before "
                "timing).",
        "results": rows,
        "min_ratio_jobs1": ratios[-1],
        "median_ratio_jobs1": ratios[len(ratios) // 2],
    }


def main():
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", nargs="*", default=list(KERNELS))
    parser.add_argument("--budget", type=int, default=BUDGET)
    parser.add_argument("--jobs-list", type=int, nargs="*", default=[1])
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--out", default="BENCH_verify.json")
    parser.add_argument("--min-ratio", type=float, default=0.0,
                        help="the batched/reference jobs=1 floor a "
                             "kernel must reach to count toward "
                             "--min-kernels")
    parser.add_argument("--min-kernels", type=int, default=3,
                        help="fail unless at least this many kernels "
                             "reach the --min-ratio floor (CI "
                             "regression gate)")
    args = parser.parse_args()
    baseline = run_baseline(kernels=tuple(args.kernels),
                            budget=args.budget,
                            jobs_list=tuple(args.jobs_list),
                            repeats=args.repeats)
    with open(args.out, "w") as fh:
        json.dump(baseline, fh, indent=2)
        fh.write("\n")
    for row in baseline["results"]:
        parts = [f"{row['kernel']}:"]
        for jobs in baseline["jobs"]:
            parts.append(
                f"jobs={jobs} reference "
                f"{row[f'reference_jobs{jobs}_boxes_per_sec']:,.0f} | "
                f"batched {row[f'batched_jobs{jobs}_boxes_per_sec']:,.0f} "
                f"boxes/s ({row[f'ratio_jobs{jobs}']:.2f}x)")
        print("  ".join(parts))
    print(f"wrote {args.out}")
    if args.min_ratio > 0.0:
        reached = [row["kernel"] for row in baseline["results"]
                   if row["ratio_jobs1"] >= args.min_ratio]
        print(f"{len(reached)}/{len(baseline['results'])} kernels at or "
              f"above {args.min_ratio:.2f}x: {', '.join(reached)}")
        if len(reached) < args.min_kernels:
            print(f"FAIL: only {len(reached)} kernels reached the "
                  f"{args.min_ratio:.2f}x batched/reference floor "
                  f"(need {args.min_kernels})", file=sys.stderr)
            sys.exit(1)


if __name__ == "__main__":
    main()
