"""Relational-vs-separate certified ULP bound tightness.

The relational domain (``BnBVerifier(..., domain='relational')``) runs
target and rewrite as one product program and bounds the live-out
difference directly, instead of subtracting independently computed
output hulls.  Per box it reports ``min(separate bound, difference
window)``, so at the *same* box budget the certified bound can never be
looser than the separate domain's — this benchmark measures how much
tighter it actually is on the degree-reduced libimf kernels, and
records the relational domain's wall-clock overhead.

As a script it writes the ``BENCH_relational.json`` baseline consumed
by CI and enforces the tightness floors: the relational bound must be
<= the separate bound on *every* kernel, at least ``--min-kernels``
kernels must be *strictly* tighter, and at least one kernel must reach
the ``--min-ratio`` separate/relational improvement factor::

    PYTHONPATH=src python benchmarks/bench_relational.py \\
        --out BENCH_relational.json --min-ratio 10 --min-kernels 3
"""

import json
import sys
import time

from repro.kernels.libimf import LIBIMF_KERNELS
from repro.verify.bnb import BnBConfig, BnBVerifier
from repro.verify.checker import check

# The same degree-reduced rewrites bench_verify.py measures: a real,
# nonzero approximation error for the bounds to enclose.
REDUCED_DEGREE = {"sin": 9, "cos": 8, "tan": 9, "log": 12, "exp": 8}
KERNELS = tuple(sorted(REDUCED_DEGREE))
BUDGET = 512


def _programs(name):
    factory = LIBIMF_KERNELS[name]
    spec = factory()
    rewrite = factory(REDUCED_DEGREE[name]).program
    return spec, rewrite


def measure_kernel(name, budget=BUDGET, recheck=True):
    """Certified bounds from both domains at an equal box budget."""
    spec, rewrite = _programs(name)
    config = BnBConfig(max_boxes=budget)
    row = {"kernel": name, "budget": budget}
    for domain in ("separate", "relational"):
        verifier = BnBVerifier(spec.program, rewrite, spec.live_outs,
                               dict(spec.ranges), domain=domain)
        start = time.perf_counter()
        result = verifier.run(config)
        elapsed = time.perf_counter() - start
        row[f"{domain}_bound_ulps"] = result.bound_ulps
        row[f"{domain}_seconds"] = elapsed
        row[f"{domain}_leaves"] = len(result.leaves)
        if recheck:
            # Every certified bound in the baseline must survive the
            # independent checker — a tightness number for a bound the
            # checker rejects would be meaningless.
            cert = verifier.certificate(result, config=config)
            report = check(cert, spec.program, rewrite)
            assert report.ok, \
                f"{name}/{domain}: checker rejected: {report.failures}"
    sep = row["separate_bound_ulps"]
    rel = row["relational_bound_ulps"]
    row["ratio"] = sep / rel if rel > 0 else float("inf")
    row["strictly_tighter"] = rel < sep
    return row


def run_baseline(kernels=KERNELS, budget=BUDGET, recheck=True):
    rows = [measure_kernel(name, budget=budget, recheck=recheck)
            for name in kernels]
    return {
        "benchmark": "relational_tightness",
        "budget": budget,
        "note": "certified ULP bounds from BnBVerifier at an equal box "
                "budget; ratio = separate/relational (>= 1 by "
                "construction, the relational domain mins with the "
                "separate bound per box).  All bounds re-validated by "
                "the independent checker before being recorded.",
        "results": rows,
        "strictly_tighter": sum(r["strictly_tighter"] for r in rows),
        "best_ratio": max(r["ratio"] for r in rows),
    }


def main():
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", nargs="*", default=list(KERNELS))
    parser.add_argument("--budget", type=int, default=BUDGET)
    parser.add_argument("--out", default="BENCH_relational.json")
    parser.add_argument("--no-recheck", action="store_true",
                        help="skip the per-domain certificate recheck")
    parser.add_argument("--min-ratio", type=float, default=0.0,
                        help="at least one kernel must be this many "
                             "times tighter relationally")
    parser.add_argument("--min-kernels", type=int, default=0,
                        help="fail unless at least this many kernels "
                             "are strictly tighter relationally")
    args = parser.parse_args()
    baseline = run_baseline(kernels=tuple(args.kernels),
                            budget=args.budget,
                            recheck=not args.no_recheck)
    with open(args.out, "w") as fh:
        json.dump(baseline, fh, indent=2)
        fh.write("\n")
    failures = []
    for row in baseline["results"]:
        print(f"{row['kernel']}: separate {row['separate_bound_ulps']:.6g}"
              f" | relational {row['relational_bound_ulps']:.6g} ULPs "
              f"({row['ratio']:.3g}x, {row['relational_seconds']:.2f}s vs "
              f"{row['separate_seconds']:.2f}s)")
        if row["relational_bound_ulps"] > row["separate_bound_ulps"]:
            failures.append(f"{row['kernel']}: relational bound looser "
                            f"than separate")
    print(f"wrote {args.out}: {baseline['strictly_tighter']}/"
          f"{len(baseline['results'])} strictly tighter, best ratio "
          f"{baseline['best_ratio']:.3g}x")
    if args.min_kernels and baseline["strictly_tighter"] < args.min_kernels:
        failures.append(f"only {baseline['strictly_tighter']} kernels "
                        f"strictly tighter (need {args.min_kernels})")
    if args.min_ratio > 0 and baseline["best_ratio"] < args.min_ratio:
        failures.append(f"best ratio {baseline['best_ratio']:.3g}x below "
                        f"the {args.min_ratio:g}x floor")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        sys.exit(1)


if __name__ == "__main__":
    main()
