"""Shared fixtures for the benchmark suite.

Every benchmark regenerates (a scaled-down instance of) one of the
paper's tables or figures; ``extra_info`` carries the actual rows/series
so ``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
run.  EXPERIMENTS.md records paper-scale settings.
"""

import random

import pytest


@pytest.fixture
def rng():
    return random.Random(0)
