"""Multi-chain search scaling: chains/sec at 1/2/4 worker processes.

The paper spreads each search over 16 threads (Section 6); our
process-parallel engine (``repro.core.parallel``) reproduces that restart
parallelism.  This benchmark measures whole-chain throughput at worker
counts 1, 2, and 4, checks that the aggregate results stay bit-identical
across worker counts, and — when run as a script — writes the
``BENCH_parallel.json`` baseline consumed by CI::

    PYTHONPATH=src python benchmarks/bench_parallel.py \\
        --out BENCH_parallel.json

Under pytest it doubles as a pytest-benchmark suite
(``pytest benchmarks/bench_parallel.py --benchmark-only``).
"""

import json
import random
import time

import pytest

from repro.core import CostConfig, SearchConfig, StokeSpec
from repro.core.parallel import run_seeded_chains
from repro.kernels.libimf import LIBIMF_KERNELS

from _util import TESTCASES, one_shot

JOB_COUNTS = (1, 2, 4)
CHAINS = 4
PROPOSALS = 1_000
KERNEL = "exp"


def _spec(kernel=KERNEL, seed=0, testcases=TESTCASES):
    spec_kernel = LIBIMF_KERNELS[kernel]()
    tests = spec_kernel.testcases(random.Random(seed), testcases)
    return StokeSpec(target=spec_kernel.program, tests=tuple(tests),
                     live_outs=tuple(spec_kernel.live_outs),
                     cost_config=CostConfig(eta=1.0e12, k=1.0))


def _measure(jobs, chains=CHAINS, proposals=PROPOSALS, seed=0):
    """One timed multi-chain run; returns (elapsed, results)."""
    spec = _spec(seed=seed)
    config = SearchConfig(proposals=proposals, seed=seed)
    start = time.perf_counter()
    results = run_seeded_chains(spec, config, chains=chains, jobs=jobs)
    return time.perf_counter() - start, results


@pytest.mark.parametrize("jobs", JOB_COUNTS)
def test_chain_scaling(benchmark, jobs):
    spec = _spec()
    config = SearchConfig(proposals=PROPOSALS, seed=0)
    results = one_shot(benchmark, run_seeded_chains, spec, config,
                       chains=CHAINS, jobs=jobs)
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["chains"] = CHAINS
    benchmark.extra_info["proposals_per_chain"] = PROPOSALS
    benchmark.extra_info["best_costs"] = [r.best_cost for r in results]


def test_results_identical_across_worker_counts():
    """The scaling benchmark is only meaningful if every worker count
    computes the same thing; compare full per-chain outcomes."""
    baseline = None
    for jobs in JOB_COUNTS:
        _, results = _measure(jobs, proposals=200)
        outcome = [(r.seed, r.best_cost, r.best_program, r.best_correct)
                   for r in results]
        if baseline is None:
            baseline = outcome
        else:
            assert outcome == baseline, f"jobs={jobs} diverged"


def run_baseline(chains=CHAINS, proposals=PROPOSALS, seed=0):
    """Measure all worker counts and return the JSON-ready baseline."""
    rows = []
    baseline_costs = None
    for jobs in JOB_COUNTS:
        elapsed, results = _measure(jobs, chains=chains,
                                    proposals=proposals, seed=seed)
        costs = [r.best_cost for r in results]
        if baseline_costs is None:
            baseline_costs = costs
        elif costs != baseline_costs:
            raise AssertionError(
                f"jobs={jobs} produced different best costs: "
                f"{costs} != {baseline_costs}")
        rows.append({
            "jobs": jobs,
            "chains": chains,
            "proposals_per_chain": proposals,
            "elapsed_seconds": elapsed,
            "chains_per_sec": chains / elapsed,
            "proposals_per_sec": chains * proposals / elapsed,
            "telemetry": [
                {key: value for key, value in r.telemetry.items()
                 if key != "best_cost_trace"}
                for r in results
            ],
        })
    serial = rows[0]["elapsed_seconds"]
    for row in rows:
        row["speedup_vs_jobs1"] = serial / row["elapsed_seconds"]
    return {
        "benchmark": "parallel_chain_scaling",
        "kernel": KERNEL,
        "seed": seed,
        "best_costs": baseline_costs,
        "results": rows,
    }


def main():
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chains", type=int, default=CHAINS)
    parser.add_argument("--proposals", type=int, default=PROPOSALS)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_parallel.json")
    args = parser.parse_args()
    baseline = run_baseline(chains=args.chains, proposals=args.proposals,
                            seed=args.seed)
    with open(args.out, "w") as fh:
        json.dump(baseline, fh, indent=2)
        fh.write("\n")
    for row in baseline["results"]:
        print(f"jobs={row['jobs']}: {row['chains_per_sec']:.2f} chains/s "
              f"({row['speedup_vs_jobs1']:.2f}x vs jobs=1)")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
