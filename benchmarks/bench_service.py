"""Campaign service overhead: cold submit+serve vs warm re-submission.

The ledger keys every job by a content digest of (kind, payload), so
resubmitting an identical campaign finds all jobs done and serves it
without running any search.  This benchmark times both paths and
enforces the warm-path floor: a warm re-submission must be at least
``SPEEDUP_FLOOR``x faster than the cold run — the whole point of the
store is that finished work is never repeated.  As a script it writes
the ``BENCH_service.json`` baseline consumed by CI::

    PYTHONPATH=src python benchmarks/bench_service.py \\
        --out BENCH_service.json

Under pytest it doubles as a pytest-benchmark suite
(``pytest benchmarks/bench_service.py --benchmark-only``).
"""

import json
import shutil
import tempfile
import time

from repro.service import Ledger, Scheduler, submit_campaign
from repro.service.campaign import CampaignSpec

from _util import one_shot

PROPOSALS = 1_500
CHAINS = 2
SPEEDUP_FLOOR = 5.0


def _spec(proposals=PROPOSALS, chains=CHAINS):
    return CampaignSpec(kernels=(("dot", 0.0),), chains=chains,
                        proposals=proposals, testcases=8, seed=0,
                        validate_proposals=300, verify_budget=64)


def _serve_once(root, spec, jobs=1):
    """Submit + serve; returns (elapsed, counts, submit counts)."""
    start = time.perf_counter()
    with Ledger(root) as ledger:
        _cid, submitted = submit_campaign(ledger, spec, name="bench")
        counts = Scheduler(ledger, jobs=jobs).run()
    return time.perf_counter() - start, counts, submitted


def _measure(spec, jobs=1):
    root = tempfile.mkdtemp(prefix="repro-bench-service-")
    try:
        cold, counts, submitted = _serve_once(root, spec, jobs=jobs)
        assert counts["failed"] == 0, counts
        assert submitted["reused"] == 0
        warm, counts, submitted = _serve_once(root, spec, jobs=jobs)
        assert counts["failed"] == 0, counts
        assert submitted["new"] == 0, "warm submission created jobs"
        return cold, warm, counts
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_cold_campaign(benchmark, tmp_path):
    one_shot(benchmark, _serve_once, str(tmp_path / "store"),
             _spec(proposals=600, chains=1))


def test_warm_resubmission(benchmark, tmp_path):
    root = str(tmp_path / "store")
    spec = _spec(proposals=600, chains=1)
    _serve_once(root, spec)
    _, counts, submitted = one_shot(benchmark, _serve_once, root, spec)
    benchmark.extra_info["reused_jobs"] = submitted["reused"]
    assert submitted["new"] == 0
    assert counts["failed"] == 0


def test_warm_speedup_floor():
    cold, warm, _counts = _measure(_spec(proposals=600, chains=1))
    assert cold / warm >= SPEEDUP_FLOOR, \
        f"warm re-submission only {cold / warm:.1f}x faster"


def run_baseline(proposals=PROPOSALS, chains=CHAINS, jobs=1):
    spec = _spec(proposals=proposals, chains=chains)
    cold, warm, counts = _measure(spec, jobs=jobs)
    speedup = cold / warm
    if speedup < SPEEDUP_FLOOR:
        raise AssertionError(
            f"warm re-submission speedup {speedup:.1f}x is below the "
            f"{SPEEDUP_FLOOR}x floor")
    return {
        "benchmark": "campaign_service_warm_resubmission",
        "kernel": "dot",
        "chains": chains,
        "proposals": proposals,
        "stages": list(spec.stages),
        "jobs": jobs,
        "cold_seconds": cold,
        "warm_seconds": warm,
        "warm_speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "jobs_total": sum(counts.values()),
        "note": "cold = fresh store: submit + serve the full campaign; "
                "warm = identical re-submission against the same store "
                "(all jobs dedupe to done, nothing re-runs).",
    }


def main():
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--proposals", type=int, default=PROPOSALS)
    parser.add_argument("--chains", type=int, default=CHAINS)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--out", default="BENCH_service.json")
    args = parser.parse_args()
    baseline = run_baseline(proposals=args.proposals, chains=args.chains,
                            jobs=args.jobs)
    with open(args.out, "w") as fh:
        json.dump(baseline, fh, indent=2)
        fh.write("\n")
    print(f"cold: {baseline['cold_seconds']:.2f}s  "
          f"warm: {baseline['warm_seconds']:.3f}s  "
          f"speedup: {baseline['warm_speedup']:.0f}x "
          f"(floor {SPEEDUP_FLOOR}x)")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
