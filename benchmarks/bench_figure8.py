"""E6/E7/E11 (Figures 6-8): aek vector kernels.

Paper shape: bit-wise rewrites of scale/dot/add cut latency (30.2%
cumulative program speedup); the imprecise delta rewrite gains more; UF
verification proves the bit-wise rewrites; interval analysis bounds delta
orders of magnitude above MCMC validation (1363.5 vs 5 ULPs).
"""

import random

import pytest

from repro.core import CostConfig, SearchConfig, Stoke
from repro.harness.figure8 import DELTA_ETA, delta_bounds, measure_rewrite
from repro.kernels.aek import vector as V

from _util import SEARCH_PROPOSALS, TESTCASES, one_shot


@pytest.mark.parametrize("name", ["scale", "dot", "add", "delta"])
def test_kernel_search(benchmark, name):
    spec = V.AEK_KERNELS[name]()
    tests = spec.testcases(random.Random(0), TESTCASES)
    eta = DELTA_ETA if name == "delta" else 0.0

    def search():
        stoke = Stoke(spec.program, tests, spec.live_outs,
                      CostConfig(eta=eta, k=1.0))
        return stoke.optimize(SearchConfig(proposals=SEARCH_PROPOSALS,
                                           seed=1))

    result = one_shot(benchmark, search)
    benchmark.extra_info.update({
        "target_latency": spec.latency,
        "rewrite_latency": result.best_correct_latency or spec.latency,
        "speedup": round(result.speedup(), 3),
    })


@pytest.mark.parametrize("name", ["scale", "dot", "add", "delta"])
def test_paper_rewrite_row(benchmark, name):
    """The Figure 8 table rows for the paper's known rewrites."""
    spec = V.AEK_KERNELS[name]()
    tests = spec.testcases(random.Random(0), TESTCASES)
    rewrite = V.AEK_REWRITES[name]()
    row = one_shot(benchmark, measure_rewrite, name, rewrite, spec, tests,
                   "paper")
    benchmark.extra_info.update({
        "latency_T": row.target_latency,
        "latency_R": row.rewrite_latency,
        "speedup": round(row.speedup, 3),
        "bitwise": row.bitwise,
        "uf_proved": row.uf_proved,
    })


def test_uf_verification(benchmark):
    """Figure 6: the uninterpreted-function proof for the dot product."""
    from repro.verify import check_equivalent_uf
    from repro.x86.memory import Memory

    spec = V.dot_kernel()

    def verify():
        return check_equivalent_uf(
            spec.program, V.dot_rewrite(), spec.live_outs,
            memory=Memory(V.aek_segments()),
            concrete_gp=V.CONCRETE_GP_INDICES)

    result = benchmark(verify)
    assert result.proved
    benchmark.extra_info["outcome"] = result.outcome.value


def test_delta_static_vs_validated_bounds(benchmark):
    """E11: interval static bound vs MCMC-validated bound for delta."""
    bounds = one_shot(benchmark, delta_bounds, 0)
    assert bounds["interval_static_ulps"] >= bounds["mcmc_validated_ulps"]
    benchmark.extra_info.update(
        {k: f"{v:.3e}" for k, v in bounds.items()})
