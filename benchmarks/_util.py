"""Shared constants/helpers for the benchmark suite (see conftest.py)."""

# Proposal budgets: the paper uses 10M proposals / 16 threads; these
# pure-Python budgets keep the whole suite in a few minutes.
SEARCH_PROPOSALS = 2_000
VALIDATION_PROPOSALS = 2_000
TESTCASES = 16


def one_shot(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive function with a single measured round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
