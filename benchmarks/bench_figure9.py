"""E8 (Figure 9): ray-traced images under kernel substitution.

Paper shape: bit-wise rewrites render pixel-identical images; the valid
imprecise delta rewrite looks identical but differs in a few pixels; the
over-aggressive delta' loses depth-of-field blur and differs everywhere.
"""

from repro.harness.figure9 import run as figure9_run

from _util import one_shot


def test_figure9_renders_and_diffs(benchmark):
    result = one_shot(benchmark, figure9_run, 20, 14, 2)
    assert result.diffs["b_bitwise"] == 0
    assert result.diffs["d_invalid"] > result.diffs["c_valid_imprecise"]
    benchmark.extra_info.update({
        "total_pixels": result.total_pixels,
        "bitwise_error_pixels": result.diffs["b_bitwise"],
        "valid_imprecise_error_pixels": result.diffs["c_valid_imprecise"],
        "invalid_error_pixels": result.diffs["d_invalid"],
    })


def test_single_frame_reference_render(benchmark):
    from repro.kernels.aek import RenderConfig, render_with

    config = RenderConfig(width=12, height=8, samples=1)
    image = one_shot(benchmark, render_with, config=config)
    benchmark.extra_info["pixels"] = image.width * image.height
