"""E9/E10 (Figure 10): search-strategy comparison.

Paper shape, optimization: random search never improves the input; hill
climbing is close to MCMC but slightly worse; annealing behaves like a
random-then-greedy hybrid.  Validation: MCMC and hill climbing nearly
tie; random search is inconsistent.
"""

import random

import pytest

from repro.core import CostConfig, SearchConfig, Stoke, make_strategy
from repro.harness.figure10 import OPT_ETA, _reduced_precision_rewrite
from repro.kernels.libimf import LIBIMF_KERNELS
from repro.validation import ValidationConfig, Validator, make_validation_strategy

from _util import TESTCASES, one_shot

STRATEGIES = ("rand", "hill", "anneal", "mcmc")
PROPOSALS = 1_500


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_optimization_strategy(benchmark, strategy):
    spec = LIBIMF_KERNELS["sin"]()
    tests = spec.testcases(random.Random(0), TESTCASES)
    stoke = Stoke(spec.program, tests, spec.live_outs,
                  CostConfig(eta=OPT_ETA, k=1.0))
    base = stoke.cost_fn.cost(spec.program).total

    def search():
        return stoke.search(SearchConfig(proposals=PROPOSALS, seed=13),
                            strategy=make_strategy(strategy))

    result = one_shot(benchmark, search)
    benchmark.extra_info.update({
        "normalized_final_cost": round(100.0 * result.best_cost / base, 2),
        "acceptance_rate": round(result.stats.acceptance_rate, 3),
    })


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_validation_strategy(benchmark, strategy):
    spec = LIBIMF_KERNELS["sin"]()
    rewrite = _reduced_precision_rewrite("sin")
    validator = Validator(spec.program, rewrite, spec.live_outs,
                          dict(spec.ranges), spec.base_testcase)

    def validate():
        return validator.validate(
            ValidationConfig(max_proposals=PROPOSALS,
                             min_samples=PROPOSALS + 1, seed=17),
            strategy=make_validation_strategy(strategy))

    result = one_shot(benchmark, validate)
    benchmark.extra_info["max_err"] = f"{result.max_err:.3e}"
