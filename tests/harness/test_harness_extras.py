"""Tests for the figure2, ablations, and run-all drivers."""

import io

from repro.harness import ablations, figure2
from repro.harness.all import _capture


class TestFigure2:
    def test_figure1_table(self):
        table = figure2.figure1_table()
        assert "Zero" in table and "Denormal" in table
        assert "infinity" in table and "nan" in table

    def test_absolute_error_grows_with_magnitude(self):
        series = figure2.adjacent_error_series("absolute")
        errors = [err for _, err in series]
        assert errors[-1] > errors[0] * 1e100

    def test_relative_error_flat_for_normals(self):
        series = figure2.adjacent_error_series("relative")
        normals = [err for x, err in series if 1e-300 < x < 1e300]
        assert max(normals) / min(normals) < 16

    def test_relative_error_diverges_for_denormals(self):
        series = figure2.adjacent_error_series("relative")
        denormal = [err for x, err in series if x < 1e-310]
        normal = [err for x, err in series if 1e-300 < x < 1e300]
        assert denormal and normal
        assert min(denormal) > max(normal) * 1e6


class TestAblations:
    def test_reduction_rows(self):
        rows = ablations.ablate_reduction(proposals=150, seed=1)
        assert [r[0] for r in rows] == ["max", "sum"]

    def test_moves_rows(self):
        rows = ablations.ablate_moves(proposals=150, seed=1)
        assert [r[0] for r in rows] == ["opcode", "operand", "swap",
                                        "instruction", "all"]

    def test_beta_rows(self):
        rows = ablations.ablate_beta(proposals=150, seed=1)
        assert len(rows) == 3


class TestRunAll:
    def test_capture_collects_output(self):
        out = io.StringIO()
        _capture("demo", lambda: print("hello-world"), out)
        text = out.getvalue()
        assert "== demo ==" in text
        assert "hello-world" in text
        assert "took" in text

    def test_capture_reports_failures(self):
        out = io.StringIO()

        def boom():
            raise RuntimeError("nope")

        _capture("broken", boom, out)
        assert "failed" in out.getvalue()
