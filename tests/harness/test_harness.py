"""Smoke + contract tests for the experiment drivers (scaled way down)."""

import math

import pytest

from repro.harness import figure4, figure5, figure8, figure9, figure10
from repro.harness import throughput, verify_scaling
from repro.harness.report import format_series, format_table


class TestReport:
    def test_table_alignment(self):
        table = format_table(("a", "bee"), [(1, 2.5), ("xx", 3)], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        assert len({len(line) for line in lines[1:3]}) == 1

    def test_series(self):
        out = format_series("s", [(1, 2.0), (3, 4.0)], labels=("x", "y"))
        assert out.startswith("# s: x, y")
        assert "3" in out

    def test_float_formatting(self):
        table = format_table(("v",), [(1.23456789e12,), (0.25,), (0.0,)])
        assert "1.235e+12" in table
        assert "0.25" in table


class TestThroughput:
    def test_jit_beats_emulator(self):
        result = throughput.measure_kernel("sin", tests=40, repeats=1)
        assert result.jit_tests_per_sec > result.emulator_tests_per_sec
        assert result.ratio > 2.0

    def test_report_renders(self):
        results = [throughput.measure_kernel("exp", tests=10, repeats=1)]
        out = throughput.report(results)
        assert "exp" in out and "batched/emulator" in out
        assert "batched/JIT" in out


class TestFigure4:
    def test_sweep_shape(self):
        sweep = figure4.sweep_kernel("sin", etas=(1.0, 1e14),
                                     proposals=400, testcases=8, seed=0)
        assert len(sweep.points) == 2
        assert sweep.points[0].eta == 1.0
        # loose precision can only help (or tie) LOC and speedup
        assert sweep.points[1].loc <= sweep.points[0].loc + 1
        assert figure4.report_sweep(sweep)

    def test_error_curve(self):
        from repro.kernels.libimf import sin_kernel

        spec = sin_kernel()
        low = sin_kernel(degree=4)
        curve = figure4.error_curve(spec, low.program, samples=20)
        assert len(curve) > 0
        assert all(err >= 0 for _, err in curve)
        assert max(err for _, err in curve) > 0


class TestFigure5:
    def test_sweep_runs(self):
        sweep = figure5.run(etas=(1.0, 1e16), proposals=300,
                            testcases=8, grid=3, seed=0, validate=False)
        assert len(sweep.points) == 2
        assert sweep.points[0].task_speedup >= 1.0
        assert figure5.report(sweep)

    def test_task_speedup_uses_amdahl(self):
        from repro.kernels.s3d import task_speedup

        assert task_speedup(2.0) == pytest.approx(1.27, abs=0.01)


class TestFigure8:
    def test_paper_rows(self):
        rows = figure8.paper_rows(testcases=8, seed=0)
        by_name = {(r.kernel, r.source): r for r in rows}
        assert by_name[("dot", "paper")].bitwise
        assert by_name[("dot", "paper")].uf_proved
        assert not by_name[("delta", "paper")].bitwise
        assert by_name[("delta'", "paper")].speedup > \
            by_name[("delta", "paper")].speedup
        assert figure8.report(rows)

    def test_delta_bounds_ordering(self):
        bounds = figure8.delta_bounds(seed=0)
        # static (sound) bound must dominate what MCMC observes
        assert bounds["interval_static_ulps"] >= bounds["mcmc_validated_ulps"]
        assert bounds["mcmc_validated_ulps"] > 0


class TestFigure9:
    def test_tiny_render(self):
        result = figure9.run(width=10, height=8, samples=1)
        assert result.diffs["b_bitwise"] == 0
        assert result.diffs["d_invalid"] > result.diffs["c_valid_imprecise"]
        assert figure9.report(result)

    def test_write_images(self, tmp_path):
        result = figure9.run(width=6, height=4, samples=1)
        figure9.write_images(result, str(tmp_path))
        assert (tmp_path / "a_reference.ppm").exists()
        assert (tmp_path / "d_invalid_errors.ppm").exists()


class TestFigure10:
    def test_optimization_traces(self):
        traces = figure10.optimization_traces(("sin",), proposals=300,
                                              testcases=8, seed=0)
        assert set(s for _, s in traces.traces) == set(figure10.STRATEGIES)
        final = figure10.summarize_final(traces)
        # MCMC should do at least as well as pure random search.
        assert final[("sin", "mcmc")] <= final[("sin", "rand")] + 1e-9

    def test_validation_traces(self):
        traces = figure10.validation_traces(("sin",), proposals=300, seed=0)
        final = figure10.summarize_final(traces)
        assert all(0.0 <= v <= 100.0 + 1e-9 for v in final.values())
        best = max(final.values())
        assert best == pytest.approx(100.0)

    def test_report_renders(self):
        traces = figure10.optimization_traces(("sin",), proposals=100,
                                              testcases=4, seed=0)
        assert "Figure 10" in figure10.report(traces)


class TestVerifyScaling:
    def test_bits_sweep_exponential(self):
        points = verify_scaling.run_bits_sweep(bits_list=(2, 4, 6))
        assert [p.cases for p in points] == [4, 16, 64]
        assert points[-1].seconds >= points[0].seconds * 0.5

    def test_length_sweep_linear(self):
        points = verify_scaling.run_length_sweep(terms_list=(2, 8), bits=4)
        assert points[1].instructions > points[0].instructions
        assert all(p.cases == 16 for p in points)
