"""Bound steps must be the emulator semantics, bit for bit.

The incremental evaluator interprets proposal suffixes through
``stepper.step_of`` closures; any drift between a specialized closure
and its opcode's generic ``exec_fn`` would silently corrupt search
results.  These tests pin every specialization to the generic
interpreter differentially, on random programs over the full opcode
registry and on the libimf kernels.
"""

from __future__ import annotations

import random

import pytest

from repro.kernels.libimf import LIBIMF_KERNELS
from repro.x86.assembler import assemble
from repro.x86.signals import SignalError
from repro.x86.stepper import _STEP_CACHE, bound_steps, step_of

from tests.conftest import base_testcase, random_program


def _run_generic(program, state):
    for instr in program.slots:
        if instr.is_unused:
            continue
        try:
            instr.spec.exec_fn(state, instr.operands)
        except SignalError as exc:
            return exc.signal
    return None


def _run_bound(program, state):
    for fn, operands in bound_steps(program.slots):
        try:
            fn(state, operands)
        except SignalError as exc:
            return exc.signal
    return None


def _assert_states_agree(program, s_a, s_b):
    text = program.to_text()
    assert s_a.gp == s_b.gp, text
    assert s_a.xmm_lo == s_b.xmm_lo, text
    assert s_a.xmm_hi == s_b.xmm_hi, text
    assert s_a.flags == s_b.flags, text
    for seg_a, seg_b in zip(s_a.mem.segments, s_b.mem.segments):
        if seg_a.writable:
            assert seg_a.data == seg_b.data, text


def _assert_differential(program, tc):
    s_gen = tc.build_state()
    s_bnd = tc.build_state()
    sig_gen = _run_generic(program, s_gen)
    sig_bnd = _run_bound(program, s_bnd)
    assert sig_gen == sig_bnd, program.to_text()
    if sig_gen is None:
        _assert_states_agree(program, s_gen, s_bnd)


class TestDifferential:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_programs(self, seed):
        program = random_program(seed, 14)
        _assert_differential(program, base_testcase(seed))

    @pytest.mark.parametrize("name", sorted(LIBIMF_KERNELS))
    def test_libimf_kernels(self, name):
        spec = LIBIMF_KERNELS[name]()
        for tc in spec.testcases(random.Random(3), 8):
            _assert_differential(spec.program, tc)

    def test_specialized_families_direct(self):
        # Dense coverage of every specialized shape, including NaN
        # payloads and the movq immediate path.
        program = assemble(
            "movq $0x7ff4000000abcdef, xmm1\n"  # signaling-NaN payload
            "movq $2.5d, xmm2\n"
            "movq rax, xmm3\n"
            "movq xmm2, xmm4\n"
            "addsd xmm1, xmm2\n"
            "subsd xmm2, xmm3\n"
            "mulsd xmm3, xmm4\n"
            "divsd xmm4, xmm2\n"
            "minsd xmm1, xmm3\n"
            "maxsd xmm3, xmm1\n"
            "movsd xmm1, xmm5\n"
            "movapd xmm5, xmm6\n"
            "ucomisd xmm2, xmm6\n"
        )
        for seed in range(6):
            _assert_differential(program, base_testcase(seed))


class TestBinding:
    def test_hot_shapes_are_specialized(self):
        # A silent fall-through to the generic exec_fn would be correct
        # but would quietly give back the interpreter's dispatch cost.
        for text in ("mulsd xmm1, xmm0", "addsd xmm2, xmm3",
                     "movsd xmm1, xmm2", "movapd xmm3, xmm4",
                     "movq $1.5d, xmm0", "movq xmm1, xmm2",
                     "ucomisd xmm1, xmm0"):
            instr = assemble(text).slots[0]
            fn, _ops = step_of(instr)
            assert fn is not instr.spec.exec_fn, text

    def test_memory_and_unknown_shapes_fall_back(self):
        # The cache is keyed on instruction *content*, so an equal
        # instruction bound earlier may supply the cached operands
        # tuple — equality, not identity, is the contract.
        for text in ("mulsd 8(rbx), xmm0", "movsd (rbx), xmm1",
                     "movsd xmm1, (rbx)", "cvtsd2ss xmm0, xmm1"):
            instr = assemble(text).slots[0]
            fn, ops = step_of(instr)
            assert fn is instr.spec.exec_fn, text
            assert ops == instr.operands

    def test_step_cache_reuses_bindings(self):
        instr = assemble("mulsd xmm1, xmm0").slots[0]
        assert step_of(instr) is step_of(instr)
        assert instr in _STEP_CACHE
