"""The NaN contract: arithmetic canonicalizes, moves preserve payloads."""

import pytest

from repro.x86 import scalar as S
from repro.x86.assembler import assemble
from repro.x86.emulator import Emulator
from repro.x86.jit import compile_program
from repro.x86.testcase import TestCase

SNAN64 = 0x7FF0000000000001        # signaling, payload 1
QNAN64_PAYLOAD = 0x7FF800000000BEEF
SNAN32 = 0x7F800001
CANON64 = 0x7FF8000000000000
CANON32 = 0x7FC00000


class TestScalarHelpers:
    def test_widen_narrow_roundtrips_snan(self):
        assert S.f2u(S.u2f(SNAN32)) == SNAN32
        assert S.f2u(S.u2f(0xFFC00123)) == 0xFFC00123

    def test_arithmetic_canonicalizes(self):
        one = S.d2u(1.0)
        assert S.add_d(SNAN64, one) == CANON64
        assert S.mul_d(QNAN64_PAYLOAD, one) == CANON64
        assert S.div_d(SNAN64, one) == CANON64
        assert S.add_f(SNAN32, S.f2u(1.0)) == CANON32

    def test_minmax_selection_canonicalizes_nan(self):
        one = S.d2u(1.0)
        # NaN comparisons are false, so src is selected; canonicalized.
        assert S.min_d(SNAN64, QNAN64_PAYLOAD) == CANON64
        # Non-NaN selections stay bit-exact (returns src on ties).
        assert S.min_d(S.d2u(-0.0), S.d2u(0.0)) == S.d2u(0.0)
        assert S.min_f(SNAN32, SNAN32) == CANON32

    def test_conversions_canonicalize(self):
        assert S.cvtsd2ss(SNAN64) == CANON32
        assert S.cvtss2sd(SNAN32) == CANON64

    def test_d2u_c(self):
        assert S.d2u_c(S.u2d(QNAN64_PAYLOAD)) == CANON64
        assert S.d2u_c(1.5) == S.d2u(1.5)
        assert S.d2u_c(-0.0) == 1 << 63


@pytest.fixture(params=["emulator", "jit"])
def backend(request):
    return request.param


def run(asm, inputs, backend):
    program = assemble(asm)
    state = TestCase(inputs).build_state()
    if backend == "jit":
        assert compile_program(program).run(state).ok
    else:
        assert Emulator().run(program, state).ok
    return state


class TestMovesPreservePayloads:
    def test_movsd_copies_snan_exactly(self, backend):
        state = run("movsd xmm1, xmm0", {"xmm1": SNAN64}, backend)
        assert state.xmm_lo[0] == SNAN64

    def test_movq_through_gp(self, backend):
        state = run("movq xmm0, rax\nmovq rax, xmm2",
                    {"xmm0": QNAN64_PAYLOAD}, backend)
        assert state.xmm_lo[2] == QNAN64_PAYLOAD

    def test_movss_lane_copy_exact(self, backend):
        state = run("movss xmm1, xmm0",
                    {"xmm1": SNAN32, "xmm0": 0}, backend)
        assert state.xmm_lo[0] == SNAN32

    def test_shuffles_exact(self, backend):
        state = run("pshufd $0b01000100, xmm0, xmm1",
                    {"xmm0": (SNAN32 << 32) | 0x12345678}, backend)
        assert state.xmm_lo[1] == (SNAN32 << 32) | 0x12345678

    def test_untouched_lane_survives_scalar_arith(self, backend):
        # addss writes lane0 only; a raw sNaN in lane1 must survive.
        state = run("addss xmm1, xmm0",
                    {"xmm0": (SNAN32 << 32) | S.f2u(1.0),
                     "xmm1:s0": S.f2u(2.0)}, backend)
        assert state.xmm_lo[0] >> 32 == SNAN32
        assert (state.xmm_lo[0] & 0xFFFFFFFF) == S.f2u(3.0)


class TestArithmeticCanonicalInBothBackends:
    def test_addsd_nan_result(self, backend):
        state = run("addsd xmm1, xmm0",
                    {"xmm0": SNAN64, "xmm1": QNAN64_PAYLOAD}, backend)
        assert state.xmm_lo[0] == CANON64

    def test_mulps_nan_lanes(self, backend):
        state = run("mulps xmm1, xmm0",
                    {"xmm0": (SNAN32 << 32) | SNAN32,
                     "xmm1": (CANON32 << 32) | S.f2u(1.0)}, backend)
        assert state.xmm_lo[0] == (CANON32 << 32) | CANON32

    def test_cvt_chain(self, backend):
        state = run("cvtsd2ss xmm0, xmm1\ncvtss2sd xmm1, xmm2",
                    {"xmm0": SNAN64}, backend)
        assert state.xmm_lo[2] == CANON64

    def test_roundsd_nan(self, backend):
        state = run("roundsd $0, xmm1, xmm0",
                    {"xmm1": QNAN64_PAYLOAD}, backend)
        assert state.xmm_lo[0] == CANON64
