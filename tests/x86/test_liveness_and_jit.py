"""Tests for liveness analysis, dead-code elimination, and JIT internals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.x86.assembler import assemble
from repro.x86.emulator import Emulator
from repro.x86.jit import (CompiledProgram, compile_program, float_literal,
                           generate_batch_source, generate_source)
from repro.x86.liveness import dead_code_eliminate, uses_and_defs
from repro.x86.program import Program
from repro.x86.testcase import TestCase

from tests.conftest import base_testcase, random_program


class TestUsesAndDefs:
    def test_simple_binop(self):
        instr = assemble("addsd xmm1, xmm0").slots[0]
        uses, defs = uses_and_defs(instr)
        assert uses == {"xmm0", "xmm1"}  # partial dst counts as use
        assert defs == {"xmm0"}

    def test_memory_operand_uses_base(self):
        instr = assemble("mulsd 8(rdi), xmm0").slots[0]
        uses, defs = uses_and_defs(instr)
        assert "rdi" in uses
        assert "mem" in uses

    def test_store_defines_mem(self):
        instr = assemble("movsd xmm0, (rdi)").slots[0]
        _, defs = uses_and_defs(instr)
        assert "mem" in defs

    def test_flags(self):
        cmp_instr = assemble("cmp rax, rcx").slots[0]
        cmov = assemble("cmove rax, rcx").slots[0]
        assert "flags" in uses_and_defs(cmp_instr)[1]
        assert "flags" in uses_and_defs(cmov)[0]

    def test_full_width_write_is_not_use(self):
        instr = assemble("movapd xmm1, xmm0").slots[0]
        uses, _ = uses_and_defs(instr)
        assert "xmm0" not in uses


class TestDeadCodeElimination:
    def test_removes_dead_instruction(self):
        program = assemble("""
            movq $1.0d, xmm5
            addsd xmm1, xmm0
        """)
        cleaned = dead_code_eliminate(program, {"xmm0"})
        assert cleaned.loc == 1
        assert cleaned.code[0].opcode == "addsd"

    def test_keeps_chains(self):
        program = assemble("""
            movq $2.0d, xmm1
            mulsd xmm1, xmm0
        """)
        cleaned = dead_code_eliminate(program, {"xmm0"})
        assert cleaned.loc == 2

    def test_preserves_slot_positions(self):
        program = assemble("""
            movq $1.0d, xmm5
            addsd xmm1, xmm0
        """)
        cleaned = dead_code_eliminate(program, {"xmm0"})
        assert len(cleaned) == len(program)
        assert cleaned.slots[0].is_unused

    def test_semantics_preserved_on_random_programs(self):
        emulator = Emulator()
        from repro.x86.locations import parse_loc

        live = [parse_loc("xmm0"), parse_loc("rax")]
        for seed in range(40):
            program = random_program(seed, 8)
            cleaned = dead_code_eliminate(program, {"xmm0", "rax"})
            tc = base_testcase(seed)
            s1, s2 = tc.build_state(), tc.build_state()
            o1 = emulator.run(program, s1)
            o2 = emulator.run(cleaned, s2)
            if o1.signal is not None:
                continue  # DCE may remove the faulting instruction
            assert o2.signal is None
            for loc in live:
                assert loc.read(s1) == loc.read(s2), program.to_text()


class TestJitInternals:
    def test_float_literal_roundtrip(self):
        for value in (1.5, -0.0, 5e-324, 1.7976931348623157e308):
            assert eval(float_literal(value)) == value or value == 0.0
        assert float_literal(float("nan")) is None
        assert float_literal(float("inf")) is None

    def test_source_is_deterministic(self):
        program = assemble("addsd xmm1, xmm0\nmulsd xmm2, xmm0")
        assert generate_source(program) == generate_source(program)

    def test_comments_flag(self):
        program = assemble("addsd xmm1, xmm0")
        assert "#" not in generate_source(program)
        assert "# addsd" in generate_source(program, comments=True)

    def test_compile_cache_returns_same_object(self):
        program = assemble("addsd xmm1, xmm0")
        assert compile_program(program) is compile_program(program)

    def test_empty_program(self):
        program = Program([])
        state = TestCase({}).build_state()
        assert compile_program(program).run(state).ok

    def test_only_dirty_registers_written_back(self):
        # A program that reads xmm1 but writes only xmm0 must not store
        # into xh[1]/xl[1] (epilogue minimality).
        source = generate_source(assemble("vaddsd xmm1, xmm2, xmm0"))
        assert "xl[0] =" in source
        assert "xl[1] =" not in source

    def test_float_domain_chaining(self):
        # Chained double arithmetic should compile to native operators
        # with no intermediate bit conversions.
        source = generate_source(assemble("""
            movq $2.0d, xmm1
            mulsd xmm1, xmm0
            addsd xmm1, xmm0
            subsd xmm1, xmm0
        """))
        # one load conversion for xmm0, one canonicalizing
        # materialization per written register (both conversions are
        # emitted as inline struct pack/unpack expressions)
        assert source.count("unpack_d(pack_q(") == 1
        assert source.count("unpack_q(pack_d(") == 2  # xmm0/xmm1 write-back

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**6))
    def test_generated_source_compiles(self, seed):
        program = random_program(seed, 10)
        CompiledProgram(program)  # must not raise


class TestBatchDispatch:
    def test_batch_source_is_deterministic(self):
        program = assemble("addsd xmm1, xmm0\nmulsd xmm2, xmm0")
        assert generate_batch_source(program) == generate_batch_source(program)

    def test_empty_program_batch(self):
        compiled = CompiledProgram(Program([]))
        states = [TestCase({}).build_state() for _ in range(3)]
        assert compiled.run_batch(states) == [None, None, None]

    def test_tiers_up_after_threshold(self):
        from repro.x86.jit import _BATCH_SPECIALIZE_AFTER

        compiled = CompiledProgram(assemble("addsd xmm1, xmm0"))
        tc = base_testcase(0)
        for call in range(1, _BATCH_SPECIALIZE_AFTER + 2):
            compiled.run_batch([tc.build_state()])
            if call <= _BATCH_SPECIALIZE_AFTER:
                assert compiled._batch_fn is None  # still the driver loop
            else:
                assert compiled._batch_fn is not None

    def test_driver_loop_and_specialized_agree(self):
        program = random_program(77, 10)
        cold = CompiledProgram(program)
        hot = CompiledProgram(program)
        hot.specialize_batch()
        tests = [base_testcase(i) for i in range(6)]
        cold_states = [tc.build_state() for tc in tests]
        hot_states = [tc.build_state() for tc in tests]
        assert cold.run_batch(cold_states) == hot.run_batch(hot_states)
        for cold_state, hot_state in zip(cold_states, hot_states):
            assert cold_state.gp == hot_state.gp
            assert cold_state.xmm_lo == hot_state.xmm_lo
            assert cold_state.xmm_hi == hot_state.xmm_hi


class TestCompileCache:
    def test_bounded_with_lru_eviction(self, monkeypatch):
        from repro.x86 import jit

        monkeypatch.setattr(jit, "_COMPILE_CACHE_MAX", 4)
        jit.clear_compile_cache()
        programs = [Program([assemble(f"mov ${i}, rax").slots[0]])
                    for i in range(10)]
        for program in programs:
            jit.compile_program(program)
        stats = jit.compile_cache_stats()
        assert stats["size"] <= 4
        assert stats["misses"] == 10
        assert stats["evictions"] == 10 - stats["size"]
        # the cold end was evicted, the hot end survives
        assert programs[0] not in jit._COMPILE_CACHE
        assert programs[-1] in jit._COMPILE_CACHE

    def test_hit_refreshes_recency(self, monkeypatch):
        from repro.x86 import jit

        monkeypatch.setattr(jit, "_COMPILE_CACHE_MAX", 2)
        jit.clear_compile_cache()
        a = assemble("mov $1, rax")
        b = assemble("mov $2, rax")
        c = assemble("mov $3, rax")
        jit.compile_program(a)
        jit.compile_program(b)
        jit.compile_program(a)  # touch a: now b is the cold end
        jit.compile_program(c)  # evicts b, not a
        assert a in jit._COMPILE_CACHE
        assert b not in jit._COMPILE_CACHE
        stats = jit.compile_cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 3
        assert stats["evictions"] == 1
