"""Tests for Program, Instruction, operands, and the UNUSED token."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.x86.assembler import assemble
from repro.x86.instruction import UNUSED, Instruction
from repro.x86.opcodes import MEM_EXTRA_LATENCY, OPCODES
from repro.x86.operands import Imm, Kind, Mem, Reg32, Reg64, Xmm
from repro.x86.program import Program

from tests.conftest import random_program


class TestOperands:
    def test_kinds(self):
        assert Reg64(0).kind is Kind.R64
        assert Reg32(0).kind is Kind.R32
        assert Xmm(5).kind is Kind.XMM
        assert Imm(3).kind is Kind.IMM
        assert Mem(8, 0).kind is Kind.M64
        assert Mem(4, 0).kind is Kind.M32
        assert Mem(16, 0).kind is Kind.M128

    def test_formatting(self):
        assert str(Reg64(7)) == "rdi"
        assert str(Xmm(12)) == "xmm12"
        assert str(Imm(5)) == "$5"
        assert str(Mem(8, 7, -16)) == "-16(rdi)"
        assert str(Mem(8, 1, 8, index=0, scale=4)) == "8(rcx,rax,4)"

    def test_large_imm_prints_hex(self):
        assert str(Imm(0x3FF0000000000000)) == "$0x3ff0000000000000"

    def test_mem_validation(self):
        with pytest.raises(ValueError):
            Mem(5, 0)
        with pytest.raises(ValueError):
            Mem(8, 0, scale=3)


class TestInstruction:
    def test_validates_operands(self):
        with pytest.raises(ValueError):
            Instruction("addsd", (Reg64(0), Xmm(0)))

    def test_unknown_opcode(self):
        with pytest.raises(KeyError):
            Instruction("bogus", ())

    def test_latency_includes_memory_penalty(self):
        reg_form = Instruction("addsd", (Xmm(1), Xmm(0)))
        mem_form = Instruction("addsd", (Mem(8, 7), Xmm(0)))
        assert mem_form.latency == reg_form.latency + MEM_EXTRA_LATENCY

    def test_unused_token(self):
        assert UNUSED.is_unused
        assert UNUSED.latency == 0

    def test_two_memory_operands_rejected(self):
        spec = OPCODES["mov"]
        assert not spec.accepts((Mem(8, 0), Mem(8, 1)))


class TestProgram:
    def test_loc_ignores_unused(self):
        program = Program([UNUSED, Instruction("addsd", (Xmm(1), Xmm(0))),
                           UNUSED])
        assert program.loc == 1
        assert len(program) == 3

    def test_with_slot_is_functional(self):
        program = assemble("addsd xmm1, xmm0")
        modified = program.with_slot(0, UNUSED)
        assert program.loc == 1
        assert modified.loc == 0

    def test_swap(self):
        program = assemble("addsd xmm1, xmm0\nmulsd xmm2, xmm0")
        swapped = program.with_swap(0, 1)
        assert swapped.slots[0].opcode == "mulsd"
        assert swapped.with_swap(0, 1) == program  # involution

    def test_padding(self):
        program = assemble("addsd xmm1, xmm0", total_slots=5)
        assert len(program) == 5
        assert program.loc == 1
        with pytest.raises(ValueError):
            program.padded(2)

    def test_compact(self):
        program = assemble("addsd xmm1, xmm0", total_slots=5)
        assert len(program.compact()) == 1

    def test_hash_and_equality(self):
        a = assemble("addsd xmm1, xmm0")
        b = assemble("addsd xmm1, xmm0")
        assert a == b
        assert hash(a) == hash(b)
        assert a != a.with_slot(0, UNUSED)

    def test_text_skips_unused_by_default(self):
        program = assemble("addsd xmm1, xmm0", total_slots=3)
        assert program.to_text().strip().count("\n") == 0
        assert "nop" in program.to_text(include_unused=True)

    def test_latency_sum(self):
        program = assemble("addsd xmm1, xmm0\nmulsd xmm2, xmm0")
        assert program.latency == sum(i.latency for i in program.code)

    @given(st.integers(0, 10**6), st.integers(1, 10))
    def test_random_programs_roundtrip_text(self, seed, length):
        program = random_program(seed, length)
        again = assemble(program.to_text(include_unused=True))
        assert again == program
