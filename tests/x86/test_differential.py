"""Differential testing: the emulator and the JIT must agree bit-for-bit.

This is the load-bearing correctness property of the whole system — the
cost function, validation, and all three applications run through the JIT,
while the emulator is the simple reference semantics.

The contract covers *every* 64-bit input pattern, including signaling-NaN
payloads: the scalar helpers widen/narrow NaNs by hand rather than via C
float casts, so the JIT's native-float value domain is a lossless carrier.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.x86.emulator import Emulator
from repro.x86.jit import compile_program

from tests.conftest import base_testcase, random_program

_EMULATOR = Emulator()


def _sanitize_testcase(tc):
    return tc  # arbitrary bit patterns are in-contract


def _run_both(program, tc):
    s_jit = tc.build_state()
    s_emu = tc.build_state()
    out_jit = compile_program(program).run(s_jit)
    out_emu = _EMULATOR.run(program, s_emu)
    return (out_jit, s_jit), (out_emu, s_emu)


def _assert_agree(program, tc):
    (out_jit, s_jit), (out_emu, s_emu) = _run_both(program, tc)
    assert out_jit.signal == out_emu.signal, program.to_text()
    if out_jit.signal is not None:
        return  # architectural state is undefined after a signal
    assert s_jit.gp == s_emu.gp, _explain(program, "gp", s_jit.gp, s_emu.gp)
    assert s_jit.xmm_lo == s_emu.xmm_lo, _explain(
        program, "xmm_lo", s_jit.xmm_lo, s_emu.xmm_lo)
    assert s_jit.xmm_hi == s_emu.xmm_hi, _explain(
        program, "xmm_hi", s_jit.xmm_hi, s_emu.xmm_hi)
    for seg_j, seg_e in zip(s_jit.mem.segments, s_emu.mem.segments):
        if seg_j.writable:
            assert seg_j.data == seg_e.data, _explain(
                program, seg_j.name, seg_j.data, seg_e.data)


def _explain(program, what, a, b):
    diffs = [i for i, (x, y) in enumerate(zip(a, b)) if x != y]
    return f"{what} mismatch at {diffs}\n{program.to_text()}"


@settings(max_examples=150, deadline=None)
@given(seed=st.integers(0, 10**9), length=st.integers(1, 12),
       case_seed=st.integers(0, 10**6))
def test_random_programs_agree(seed, length, case_seed):
    program = random_program(seed, length)
    tc = _sanitize_testcase(base_testcase(case_seed))
    _assert_agree(program, tc)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10**9), case_seed=st.integers(0, 10**6))
def test_float_heavy_programs_agree(seed, case_seed):
    names = [
        "addsd", "subsd", "mulsd", "divsd", "minsd", "maxsd", "sqrtsd",
        "addss", "subss", "mulss", "divss", "sqrtss",
        "vaddsd", "vmulsd", "vfmadd213sd", "vfmadd231sd", "vfnmadd213sd",
        "addpd", "mulpd", "addps", "mulps", "cvtsd2ss", "cvtss2sd",
        "cvttsd2si", "cvtsi2sd", "movsd", "movss", "movq", "movapd",
        "unpcklpd", "unpckhpd", "punpckldq", "pshufd", "xorps", "andpd",
    ]
    program = random_program(seed, 10, opcode_names=names)
    tc = _sanitize_testcase(base_testcase(case_seed))
    _assert_agree(program, tc)


@pytest.mark.parametrize("kernel_name",
                         ["sin", "cos", "tan", "log", "exp"])
def test_libimf_kernels_agree(kernel_name):
    from repro.kernels.libimf import LIBIMF_KERNELS

    spec = LIBIMF_KERNELS[kernel_name]()
    rng = random.Random(5)
    for tc in spec.testcases(rng, 25):
        _assert_agree(spec.program, tc)


@pytest.mark.parametrize("kernel_name", ["scale", "dot", "add", "delta"])
def test_aek_kernels_agree(kernel_name):
    from repro.kernels.aek import vector as V

    spec = V.AEK_KERNELS[kernel_name]()
    rewrite = V.AEK_REWRITES[kernel_name]()
    rng = random.Random(6)
    for tc in spec.testcases(rng, 20):
        _assert_agree(spec.program, tc)
        _assert_agree(rewrite, tc)


def test_segfault_agreement():
    from repro.x86.assembler import assemble
    from repro.x86.signals import Signal

    program = assemble("movsd 4096(rax), xmm0")
    tc = base_testcase(0).replace("rax", 0xDEAD0000)
    (out_jit, _), (out_emu, _) = _run_both(program, tc)
    assert out_jit.signal == out_emu.signal == Signal.SIGSEGV
