"""Tests for the segmented, sandboxed memory."""

import pytest

from repro.x86.memory import Memory, Segment
from repro.x86.signals import SegFault, Signal


def make_memory():
    return Memory([
        Segment("data", 0x1000, bytes(32), writable=True),
        Segment("table", 0x2000, bytes(range(16)), writable=False),
    ])


class TestSegments:
    def test_bounds(self):
        seg = Segment("s", 0x100, bytes(8))
        assert seg.contains(0x100, 8)
        assert not seg.contains(0x100, 9)
        assert not seg.contains(0xFF, 1)

    def test_copy_is_deep(self):
        seg = Segment("s", 0, bytes(4))
        dup = seg.copy()
        dup.data[0] = 0xFF
        assert seg.data[0] == 0

    def test_overlap_rejected(self):
        mem = make_memory()
        with pytest.raises(ValueError):
            mem.map(Segment("clash", 0x1010, bytes(4)))

    def test_adjacent_allowed(self):
        mem = make_memory()
        mem.map(Segment("next", 0x1020, bytes(4)))
        assert mem.segment("next").base == 0x1020


class TestLoadStore:
    def test_little_endian_roundtrip(self):
        mem = make_memory()
        mem.store(0x1000, 8, 0x0102030405060708)
        assert mem.load(0x1000, 8) == 0x0102030405060708
        assert mem.load(0x1000, 1) == 0x08  # low byte first

    def test_partial_overlap_of_stores(self):
        mem = make_memory()
        mem.store(0x1000, 8, 0xAABBCCDDEEFF1122)
        assert mem.load(0x1004, 4) == 0xAABBCCDD

    def test_value_masked_to_size(self):
        mem = make_memory()
        mem.store(0x1000, 4, 0x1FFFFFFFF)
        assert mem.load(0x1000, 4) == 0xFFFFFFFF

    def test_read_only_table(self):
        mem = make_memory()
        assert mem.load(0x2000, 4) == 0x03020100
        with pytest.raises(SegFault):
            mem.store(0x2000, 4, 0)

    def test_load16(self):
        mem = make_memory()
        mem.store(0x1000, 8, 1)
        mem.store(0x1008, 8, 2)
        assert mem.load16(0x1000) == (1, 2)

    def test_store16(self):
        mem = make_memory()
        mem.store16(0x1000, 0xAA, 0xBB)
        assert mem.load8(0x1000) == 0xAA
        assert mem.load8(0x1008) == 0xBB


class TestSandbox:
    def test_unmapped_load_faults(self):
        mem = make_memory()
        with pytest.raises(SegFault) as excinfo:
            mem.load(0x9000, 8)
        assert excinfo.value.signal is Signal.SIGSEGV

    def test_straddling_access_faults(self):
        mem = make_memory()
        with pytest.raises(SegFault):
            mem.load(0x101C, 8)  # 4 bytes in, 4 bytes out

    def test_wraparound_address(self):
        mem = make_memory()
        with pytest.raises(SegFault):
            mem.load(2**64 - 4, 8)


class TestCopy:
    def test_copy_shares_read_only(self):
        mem = make_memory()
        dup = mem.copy()
        assert dup.segment("table") is mem.segment("table")
        assert dup.segment("data") is not mem.segment("data")

    def test_copy_isolates_writes(self):
        mem = make_memory()
        dup = mem.copy()
        dup.store(0x1000, 8, 42)
        assert mem.load(0x1000, 8) == 0
