"""Tests for the AT&T-syntax assembler."""

import pytest

from repro.fp.ieee754 import double_to_bits, single_to_bits
from repro.x86.assembler import AsmError, assemble, disassemble, parse_instruction
from repro.x86.operands import Imm, Mem, Reg32, Reg64, Xmm


class TestBasicParsing:
    def test_simple_instruction(self):
        instr = parse_instruction("addsd xmm1, xmm0")
        assert instr.opcode == "addsd"
        assert instr.operands == (Xmm(1), Xmm(0))

    def test_percent_prefixes_accepted(self):
        instr = parse_instruction("addsd %xmm1, %xmm0")
        assert instr.operands == (Xmm(1), Xmm(0))

    def test_comments_and_blanks(self):
        program = assemble("""
            # a comment
            addsd xmm1, xmm0   # trailing comment

        """)
        assert program.loc == 1

    def test_case_insensitive_mnemonic(self):
        assert parse_instruction("ADDSD xmm1, xmm0").opcode == "addsd"

    def test_unknown_opcode(self):
        with pytest.raises(AsmError, match="unknown opcode"):
            parse_instruction("frobnicate xmm0, xmm1")

    def test_wrong_arity(self):
        with pytest.raises(AsmError):
            parse_instruction("addsd xmm0")


class TestMemoryOperands:
    def test_base_only(self):
        instr = parse_instruction("mulsd (rdi), xmm0")
        assert instr.operands[0] == Mem(8, 7)

    def test_displacement(self):
        instr = parse_instruction("mulss 8(rdi), xmm1")
        assert instr.operands[0] == Mem(4, 7, 8)

    def test_negative_displacement(self):
        instr = parse_instruction("movsd -16(rsp), xmm0")
        assert instr.operands[0] == Mem(8, 4, -16)

    def test_index_and_scale(self):
        instr = parse_instruction("mulsd 16(rcx,rax,8), xmm0")
        assert instr.operands[0] == Mem(8, 1, 16, index=0, scale=8)

    def test_size_inferred_from_opcode(self):
        assert parse_instruction("addss (rdi), xmm0").operands[0].size == 4
        assert parse_instruction("addsd (rdi), xmm0").operands[0].size == 8
        assert parse_instruction("addpd (rdi), xmm0").operands[0].size == 16

    def test_size_inferred_from_companion_register(self):
        assert parse_instruction("mov (rdi), rax").operands[0].size == 8
        assert parse_instruction("mov (rdi), eax").operands[0].size == 4

    def test_mem_to_mem_rejected(self):
        with pytest.raises(AsmError):
            parse_instruction("mov (rdi), (rsi)")


class TestImmediates:
    def test_decimal_and_hex(self):
        assert parse_instruction("shl $5, rax").operands[0] == Imm(5)
        instr = parse_instruction("and $0xff, rax")
        assert instr.operands[0].value == 0xFF

    def test_negative(self):
        assert parse_instruction("pshuflw $-2, xmm0, xmm2").operands[0].value == -2

    def test_double_float_immediate(self):
        instr = parse_instruction("movq $1.5d, xmm0")
        assert instr.operands[0].value == double_to_bits(1.5)

    def test_single_float_immediate(self):
        instr = parse_instruction("movl $0.5f, eax")
        assert instr.operands[0].value == single_to_bits(0.5)

    def test_bare_float_width_from_register(self):
        # Paper style: "movl 0.5, eax" loads single-precision bits.
        instr = parse_instruction("movl 0.5, eax")
        assert instr.operands[0].value == single_to_bits(0.5)

    def test_bare_float_defaults_to_double_for_xmm(self):
        instr = parse_instruction("movq $2.0, xmm1")
        assert instr.operands[0].value == double_to_bits(2.0)


class TestAliases:
    def test_movl_is_mov(self):
        instr = parse_instruction("movl $1, eax")
        assert instr.opcode == "mov"
        assert isinstance(instr.operands[1], Reg32)

    def test_movq_gp_is_mov(self):
        instr = parse_instruction("movq rax, rcx")
        assert instr.opcode == "mov"
        assert isinstance(instr.operands[1], Reg64)

    def test_movq_xmm_stays_movq(self):
        assert parse_instruction("movq xmm0, rax").opcode == "movq"

    def test_suffixed_alu(self):
        assert parse_instruction("addq $8, rax").opcode == "add"
        assert parse_instruction("subl $1, eax").opcode == "sub"


class TestPaperListings:
    def test_figure6_gcc_dot(self):
        program = assemble("""
            movq xmm0, -16(rsp)
            mulss 8(rdi), xmm1
            movss (rdi), xmm0
            movss 4(rdi), xmm2
            mulss -16(rsp), xmm0
            mulss -12(rsp), xmm2
            addss xmm2, xmm0
            addss xmm1, xmm0
        """)
        assert program.loc == 8

    def test_figure6_stoke_dot(self):
        program = assemble("""
            vpshuflw $-2, xmm0, xmm2
            mulss 8(rdi), xmm1
            mulss (rdi), xmm0
            mulss 4(rdi), xmm2
            vaddss xmm0, xmm2, xmm5
            vaddss xmm5, xmm1, xmm0
        """)
        assert program.loc == 6

    def test_figure7_fragment(self):
        program = assemble("""
            movl $0.5, eax
            movd eax, xmm2
            subps xmm2, xmm0
            lddqu 4(rdi), xmm5
            punpckldq xmm5, xmm0
        """)
        assert program.loc == 5


class TestRoundTrip:
    def test_assemble_disassemble_assemble(self):
        text = """movq $1.5d, xmm2
mulsd xmm2, xmm0
addsd 8(rdi), xmm0
cmovae rdx, rax
shl $52, rax
"""
        program = assemble(text)
        again = assemble(disassemble(program))
        assert program == again

    def test_line_numbers_in_errors(self):
        with pytest.raises(AsmError, match="line 2"):
            assemble("addsd xmm0, xmm1\nbogus xmm0\n")
