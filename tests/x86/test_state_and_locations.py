"""Tests for MachineState, Loc/MemLoc, and TestCase."""

import random
import struct

import pytest

from repro.fp.ieee754 import bits_to_double, double_to_bits
from repro.x86.locations import Loc, MemLoc, parse_loc
from repro.x86.memory import Memory, Segment
from repro.x86.operands import Mem, Reg32, Reg64, Xmm
from repro.x86.state import MachineState
from repro.x86.testcase import TestCase, decode_from, encode_for, uniform_testcases


class TestMachineState:
    def test_gp32_write_zero_extends(self):
        state = MachineState()
        state.gp[0] = 0xFFFFFFFFFFFFFFFF
        state.write_gp32(Reg32(0), 0x1234)
        assert state.gp[0] == 0x1234

    def test_xmm_lo_write_preserves_high(self):
        state = MachineState()
        state.xmm_hi[2] = 99
        state.write_xmm_lo(Xmm(2), 5)
        assert state.xmm_hi[2] == 99

    def test_effective_address(self):
        state = MachineState()
        state.gp[1] = 0x1000
        state.gp[0] = 4
        assert state.addr(Mem(8, 1, 16, index=0, scale=8)) == 0x1030

    def test_read64_from_imm_masks(self):
        from repro.x86.operands import Imm

        state = MachineState()
        assert state.read64(Imm(-1)) == 0xFFFFFFFFFFFFFFFF

    def test_copy_isolates(self):
        state = MachineState(Memory([Segment("s", 0, bytes(8))]))
        dup = state.copy()
        dup.gp[0] = 7
        dup.mem.store8(0, 42)
        assert state.gp[0] == 0
        assert state.mem.load8(0) == 0


class TestLocations:
    def test_parse_grammar(self):
        assert parse_loc("rax") == Loc("rax", 0, 64, "i64")
        assert parse_loc("eax").width == 32
        assert parse_loc("xmm0") == Loc("xmm0", 0, 64, "f64")
        assert parse_loc("xmm0:hd").lane == 1
        assert parse_loc("xmm3:s2") == Loc("xmm3", 2, 32, "f32")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_loc("xmm0:q9")
        with pytest.raises(ValueError):
            parse_loc("notareg")

    def test_str_roundtrip(self):
        for text in ("rax", "xmm0:d", "xmm0:hd", "xmm1:s0", "xmm1:s3"):
            assert str(parse_loc(text)) in (text, text.replace(":d", ""))

    def test_lane_read_write(self):
        state = MachineState()
        loc = parse_loc("xmm0:s1")
        loc.write(state, 0xABCD)
        assert state.xmm_lo[0] == 0xABCD_00000000
        assert loc.read(state) == 0xABCD

    def test_high_lane_read_write(self):
        state = MachineState()
        loc = parse_loc("xmm0:s3")
        loc.write(state, 0x1111)
        assert state.xmm_hi[0] == 0x1111_00000000
        assert loc.read(state) == 0x1111

    def test_memloc(self):
        state = MachineState(Memory([Segment("buf", 0x100, bytes(16))]))
        loc = MemLoc("buf", 4, "f32")
        loc.write(state, 0x3F800000)
        assert loc.read(state) == 0x3F800000
        assert state.mem.load4(0x104) == 0x3F800000

    def test_memloc_str(self):
        assert str(MemLoc("v1", 8, "f32")) == "[v1+8]:f32"


class TestTestCase:
    def test_from_values_encodes_by_type(self):
        tc = TestCase.from_values({"xmm0": 1.5, "rax": 7})
        assert tc.value_of("xmm0") == double_to_bits(1.5)
        assert tc.value_of("rax") == 7

    def test_build_state_applies_inputs(self):
        tc = TestCase.from_values({"xmm0": 2.0, "rcx": 0x10})
        state = tc.build_state()
        assert bits_to_double(state.xmm_lo[0]) == 2.0
        assert state.gp[1] == 0x10

    def test_build_state_is_fresh_each_time(self):
        tc = TestCase.from_values({"xmm0": 2.0},
                                  [Segment("s", 0, bytes(8))])
        first = tc.build_state()
        first.mem.store8(0, 99)
        second = tc.build_state()
        assert second.mem.load8(0) == 0

    def test_replace(self):
        tc = TestCase.from_values({"xmm0": 1.0})
        modified = tc.replace("xmm0", double_to_bits(3.0))
        assert tc.value_of("xmm0") == double_to_bits(1.0)
        assert modified.value_of("xmm0") == double_to_bits(3.0)

    def test_memloc_inputs(self):
        loc = MemLoc("buf", 0, "f32")
        tc = TestCase.from_values({loc: 1.5},
                                  [Segment("buf", 0x100, bytes(8))])
        state = tc.build_state()
        assert state.mem.load4(0x100) == struct.unpack(
            "<I", struct.pack("<f", 1.5))[0]

    def test_encode_decode_roundtrip(self):
        loc = parse_loc("xmm0")
        assert decode_from(loc, encode_for(loc, 3.25)) == 3.25
        lane = parse_loc("xmm0:s0")
        assert decode_from(lane, encode_for(lane, 0.5)) == 0.5

    def test_uniform_testcases_respect_ranges(self):
        rng = random.Random(0)
        cases = uniform_testcases(rng, 50, {"xmm0": (-2.0, 3.0)})
        assert len(cases) == 50
        for tc in cases:
            value = bits_to_double(tc.value_of("xmm0"))
            assert -2.0 <= value <= 3.0
