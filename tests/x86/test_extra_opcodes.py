"""Unit semantics for the SSE4.1/shuffle opcodes added beyond the core set."""

import math

import pytest

from repro.fp.ieee754 import bits_to_double, double_to_bits, single_to_bits
from repro.x86.assembler import assemble
from repro.x86.emulator import Emulator
from repro.x86.jit import compile_program
from repro.x86.testcase import TestCase


@pytest.fixture(params=["emulator", "jit"])
def backend(request):
    return request.param


def run(asm, inputs, backend):
    program = assemble(asm)
    state = TestCase(inputs).build_state()
    if backend == "jit":
        outcome = compile_program(program).run(state)
    else:
        outcome = Emulator().run(program, state)
    assert outcome.ok
    return state


def d(value):
    return double_to_bits(value)


class TestRoundsd:
    @pytest.mark.parametrize("mode,value,want", [
        (0, 2.5, 2.0), (0, 3.5, 4.0), (0, -2.5, -2.0),  # nearest-even
        (1, 2.7, 2.0), (1, -2.3, -3.0),                  # floor
        (2, 2.3, 3.0), (2, -2.7, -2.0),                  # ceil
        (3, 2.9, 2.0), (3, -2.9, -2.0),                  # truncate
    ])
    def test_modes(self, backend, mode, value, want):
        state = run(f"roundsd ${mode}, xmm1, xmm0", {"xmm1": d(value)},
                    backend)
        assert bits_to_double(state.xmm_lo[0]) == want

    def test_preserves_sign_of_zero(self, backend):
        state = run("roundsd $3, xmm1, xmm0", {"xmm1": d(-0.5)}, backend)
        assert state.xmm_lo[0] == d(-0.0)

    def test_specials_pass_through(self, backend):
        state = run("roundsd $0, xmm1, xmm0", {"xmm1": d(math.inf)}, backend)
        assert bits_to_double(state.xmm_lo[0]) == math.inf
        state = run("roundsd $0, xmm1, xmm0", {"xmm1": d(math.nan)}, backend)
        assert math.isnan(bits_to_double(state.xmm_lo[0]))

    def test_exp_style_range_reduction(self, backend):
        # roundsd + subtraction: an alternative k/r split the search can
        # discover for the exp kernel.
        state = run("""
            roundsd $0, xmm0, xmm1
            subsd xmm1, xmm0
        """, {"xmm0": d(3.7)}, backend)
        assert bits_to_double(state.xmm_lo[1]) == 4.0
        assert bits_to_double(state.xmm_lo[0]) == 3.7 - 4.0


class TestShufpd:
    def test_selects_halves(self, backend):
        inputs = {"xmm0": d(1.0), "xmm0:hd": d(2.0),
                  "xmm1": d(3.0), "xmm1:hd": d(4.0)}
        # imm=0: lo from dst.lo, hi from src.lo
        state = run("shufpd $0, xmm1, xmm0", dict(inputs), backend)
        assert (bits_to_double(state.xmm_lo[0]),
                bits_to_double(state.xmm_hi[0])) == (1.0, 3.0)
        # imm=3: lo from dst.hi, hi from src.hi
        state = run("shufpd $3, xmm1, xmm0", dict(inputs), backend)
        assert (bits_to_double(state.xmm_lo[0]),
                bits_to_double(state.xmm_hi[0])) == (2.0, 4.0)

    def test_self_swap(self, backend):
        # shufpd $1, x, x swaps the halves.
        state = run("shufpd $1, xmm0, xmm0",
                    {"xmm0": d(1.0), "xmm0:hd": d(2.0)}, backend)
        assert bits_to_double(state.xmm_lo[0]) == 2.0
        assert bits_to_double(state.xmm_hi[0]) == 1.0


class TestMovlhpsMovhlps:
    def test_movlhps(self, backend):
        state = run("movlhps xmm1, xmm0",
                    {"xmm0": d(1.0), "xmm1": d(5.0)}, backend)
        assert bits_to_double(state.xmm_lo[0]) == 1.0
        assert bits_to_double(state.xmm_hi[0]) == 5.0

    def test_movhlps(self, backend):
        state = run("movhlps xmm1, xmm0",
                    {"xmm0": d(1.0), "xmm1:hd": d(7.0)}, backend)
        assert bits_to_double(state.xmm_lo[0]) == 7.0

    def test_roundtrip(self, backend):
        state = run("movlhps xmm0, xmm1\nmovhlps xmm1, xmm2",
                    {"xmm0": d(3.25)}, backend)
        assert bits_to_double(state.xmm_lo[2]) == 3.25


class TestPackedConversions:
    def test_cvtps2pd(self, backend):
        lanes = single_to_bits(1.5) | (single_to_bits(-2.25) << 32)
        state = run("cvtps2pd xmm1, xmm0", {"xmm1": lanes}, backend)
        assert bits_to_double(state.xmm_lo[0]) == 1.5
        assert bits_to_double(state.xmm_hi[0]) == -2.25

    def test_cvtpd2ps(self, backend):
        state = run("cvtpd2ps xmm1, xmm0",
                    {"xmm1": d(0.1), "xmm1:hd": d(7.0)}, backend)
        import numpy as np

        assert (state.xmm_lo[0] & 0xFFFFFFFF) == single_to_bits(0.1)
        assert (state.xmm_lo[0] >> 32) == single_to_bits(7.0)
        assert state.xmm_hi[0] == 0

    def test_roundtrip_exact_singles(self, backend):
        lanes = single_to_bits(1.5) | (single_to_bits(3.0) << 32)
        state = run("cvtps2pd xmm0, xmm1\ncvtpd2ps xmm1, xmm2",
                    {"xmm0": lanes}, backend)
        assert state.xmm_lo[2] == lanes

    def test_cvtps2pd_self(self, backend):
        lanes = single_to_bits(2.0) | (single_to_bits(4.0) << 32)
        state = run("cvtps2pd xmm0, xmm0", {"xmm0": lanes}, backend)
        assert bits_to_double(state.xmm_lo[0]) == 2.0
        assert bits_to_double(state.xmm_hi[0]) == 4.0


class TestTrace:
    def test_trace_records_changes(self):
        from repro.x86.trace import trace_program

        program = assemble("movq $2.0d, xmm1\nmulsd xmm1, xmm0")
        state = TestCase.from_values({"xmm0": 3.0}).build_state()
        trace = trace_program(program, state)
        assert len(trace.steps) == 2
        assert "xmm1" in trace.steps[0].changes
        assert "xmm0" in trace.steps[1].changes
        assert trace.signal is None
        assert "mulsd" in trace.render()

    def test_trace_stops_at_signal(self):
        from repro.x86.signals import Signal
        from repro.x86.trace import trace_program

        program = assemble("movq $1.0d, xmm0\nmovsd (rax), xmm1")
        state = TestCase.from_values({"rax": 0xBAD}).build_state()
        trace = trace_program(program, state)
        assert trace.signal is Signal.SIGSEGV
        assert len(trace.steps) == 2

    def test_trace_skips_unused(self):
        from repro.x86.trace import trace_program

        program = assemble("addsd xmm0, xmm0", total_slots=4)
        state = TestCase.from_values({"xmm0": 1.0}).build_state()
        trace = trace_program(program, state)
        assert len(trace.steps) == 1
