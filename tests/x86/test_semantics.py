"""Unit tests for instruction semantics, run through both backends.

Each case builds a tiny program, runs it on a known machine state, and
checks the architectural result against hand-computed expectations.  The
``backend`` fixture parameterizes every test over the emulator and JIT.
"""

import math
import struct

import numpy as np
import pytest

from repro.fp.ieee754 import bits_to_double, double_to_bits, single_to_bits
from repro.x86.assembler import assemble
from repro.x86.emulator import Emulator
from repro.x86.jit import compile_program
from repro.x86.memory import Segment
from repro.x86.signals import Signal
from repro.x86.testcase import TestCase


@pytest.fixture(params=["emulator", "jit"])
def backend(request):
    return request.param


def run(asm, inputs, backend, segments=()):
    program = assemble(asm)
    tc = TestCase(inputs, segments)
    state = tc.build_state()
    if backend == "jit":
        outcome = compile_program(program).run(state)
    else:
        outcome = Emulator().run(program, state)
    return state, outcome


def xmm_d(state, i):
    return bits_to_double(state.xmm_lo[i])


def d(value):
    return double_to_bits(value)


class TestScalarDouble:
    def test_addsd(self, backend):
        state, _ = run("addsd xmm1, xmm0", {"xmm0": d(1.5), "xmm1": d(2.5)},
                       backend)
        assert xmm_d(state, 0) == 4.0

    def test_subsd_order(self, backend):
        state, _ = run("subsd xmm1, xmm0", {"xmm0": d(10.0), "xmm1": d(4.0)},
                       backend)
        assert xmm_d(state, 0) == 6.0  # dst - src

    def test_divsd_by_zero_is_inf(self, backend):
        state, outcome = run("divsd xmm1, xmm0",
                             {"xmm0": d(1.0), "xmm1": d(0.0)}, backend)
        assert outcome.ok  # FP division does not trap
        assert xmm_d(state, 0) == math.inf

    def test_divsd_zero_by_zero_is_nan(self, backend):
        state, _ = run("divsd xmm1, xmm0",
                       {"xmm0": d(0.0), "xmm1": d(0.0)}, backend)
        assert math.isnan(xmm_d(state, 0))

    def test_divsd_sign_of_inf(self, backend):
        state, _ = run("divsd xmm1, xmm0",
                       {"xmm0": d(-1.0), "xmm1": d(0.0)}, backend)
        assert xmm_d(state, 0) == -math.inf

    def test_minsd_returns_src_on_nan(self, backend):
        state, _ = run("minsd xmm1, xmm0",
                       {"xmm0": d(math.nan), "xmm1": d(3.0)}, backend)
        assert xmm_d(state, 0) == 3.0

    def test_maxsd_equal_returns_src(self, backend):
        # x86 MAXSD returns the second source on ties: max(-0, +0) = +0src.
        state, _ = run("maxsd xmm1, xmm0",
                       {"xmm0": d(-0.0), "xmm1": d(0.0)}, backend)
        assert state.xmm_lo[0] == d(0.0)

    def test_sqrtsd(self, backend):
        state, _ = run("sqrtsd xmm1, xmm0", {"xmm1": d(9.0)}, backend)
        assert xmm_d(state, 0) == 3.0

    def test_sqrtsd_negative_is_nan(self, backend):
        state, _ = run("sqrtsd xmm1, xmm0", {"xmm1": d(-4.0)}, backend)
        assert math.isnan(xmm_d(state, 0))

    def test_sqrtsd_negative_zero(self, backend):
        state, _ = run("sqrtsd xmm1, xmm0", {"xmm1": d(-0.0)}, backend)
        assert state.xmm_lo[0] == d(-0.0)

    def test_scalar_preserves_high_quad(self, backend):
        tc = {"xmm0": d(1.0), "xmm1": d(2.0)}
        program = "addsd xmm1, xmm0"
        state, _ = run(program, tc, backend)
        # high quad untouched (zero in, zero out) and low replaced
        assert state.xmm_hi[0] == 0
        inputs = dict(tc)
        inputs["xmm0:hd"] = d(7.0)
        state, _ = run(program, inputs, backend)
        assert state.xmm_hi[0] == d(7.0)


class TestScalarSingle:
    def test_addss_rounds_to_single(self, backend):
        a = single_to_bits(0.1)
        b = single_to_bits(0.2)
        state, _ = run("addss xmm1, xmm0",
                       {"xmm0:s0": a, "xmm1:s0": b}, backend)
        want = float(np.float32(np.float32(0.1) + np.float32(0.2)))
        got = struct.unpack("<f", struct.pack("<I",
                                              state.xmm_lo[0] & 0xFFFFFFFF))[0]
        assert got == want

    def test_addss_preserves_upper_lanes(self, backend):
        state, _ = run("addss xmm1, xmm0",
                       {"xmm0": 0xAAAAAAAA00000000 | single_to_bits(1.0),
                        "xmm1:s0": single_to_bits(2.0)}, backend)
        assert state.xmm_lo[0] >> 32 == 0xAAAAAAAA

    def test_divss_single_rounding(self, backend):
        a, b = single_to_bits(1.0), single_to_bits(3.0)
        state, _ = run("divss xmm1, xmm0",
                       {"xmm0:s0": a, "xmm1:s0": b}, backend)
        want = np.float32(1.0) / np.float32(3.0)
        assert (state.xmm_lo[0] & 0xFFFFFFFF) == int(want.view(np.uint32))


class TestAvxAndFma:
    def test_vaddsd_three_operand(self, backend):
        state, _ = run("vaddsd xmm1, xmm2, xmm3",
                       {"xmm1": d(1.0), "xmm2": d(2.0),
                        "xmm2:hd": d(9.0)}, backend)
        assert xmm_d(state, 3) == 3.0
        assert state.xmm_hi[3] == d(9.0)  # high copied from src2

    def test_vsubsd_operand_order(self, backend):
        state, _ = run("vsubsd xmm1, xmm2, xmm3",
                       {"xmm1": d(1.0), "xmm2": d(10.0)}, backend)
        assert xmm_d(state, 3) == 9.0  # src2 - src1

    def test_fma213_formula(self, backend):
        # vfmadd213sd o1, o2, d:  d = o2*d + o1
        state, _ = run("vfmadd213sd xmm1, xmm2, xmm0",
                       {"xmm0": d(3.0), "xmm1": d(10.0), "xmm2": d(4.0)},
                       backend)
        assert xmm_d(state, 0) == 22.0

    def test_fma231_formula(self, backend):
        state, _ = run("vfmadd231sd xmm1, xmm2, xmm0",
                       {"xmm0": d(3.0), "xmm1": d(10.0), "xmm2": d(4.0)},
                       backend)
        assert xmm_d(state, 0) == 43.0

    def test_fma_single_rounding(self, backend):
        # Choose values where fused differs from mul-then-add:
        # (1 + 2^-30)^2 = 1 + 2^-29 + 2^-60; subtracting 1 fused keeps
        # the 2^-60 term that a separate mul would round away.
        x = 1.0 + 2.0 ** -30
        state, _ = run("vfmadd213sd xmm1, xmm2, xmm0",
                       {"xmm0": d(x), "xmm2": d(x), "xmm1": d(-1.0)},
                       backend)
        fused = xmm_d(state, 0)
        unfused = x * x - 1.0
        assert fused != unfused
        assert fused == 2.0 ** -29 + 2.0 ** -60

    def test_fnmadd(self, backend):
        state, _ = run("vfnmadd213sd xmm1, xmm2, xmm0",
                       {"xmm0": d(3.0), "xmm1": d(10.0), "xmm2": d(4.0)},
                       backend)
        assert xmm_d(state, 0) == -2.0


class TestMoves:
    def test_movq_to_xmm_zeroes_high(self, backend):
        state, _ = run("movq rax, xmm0",
                       {"rax": 0x1234, "xmm0:hd": d(1.0)}, backend)
        assert state.xmm_lo[0] == 0x1234
        assert state.xmm_hi[0] == 0

    def test_movsd_reg_preserves_high(self, backend):
        state, _ = run("movsd xmm1, xmm0",
                       {"xmm1": d(2.0), "xmm0:hd": d(5.0)}, backend)
        assert state.xmm_hi[0] == d(5.0)

    def test_movsd_load_zeroes_high(self, backend):
        seg = Segment("buf", 0x1000, struct.pack("<d", 6.5))
        state, _ = run("movsd (rax), xmm0",
                       {"rax": 0x1000, "xmm0:hd": d(5.0)}, backend,
                       segments=[seg])
        assert xmm_d(state, 0) == 6.5
        assert state.xmm_hi[0] == 0

    def test_mov32_zero_extends(self, backend):
        state, _ = run("mov $-1, eax", {"rax": 0xFFFFFFFFFFFFFFFF}, backend)
        assert state.gp[0] == 0xFFFFFFFF

    def test_movq_pseudo_immediate(self, backend):
        state, _ = run("movq $2.5d, xmm3", {}, backend)
        assert xmm_d(state, 3) == 2.5


class TestShufflesAndUnpacks:
    def test_unpcklpd(self, backend):
        state, _ = run("unpcklpd xmm1, xmm0",
                       {"xmm0": d(1.0), "xmm1": d(2.0)}, backend)
        assert xmm_d(state, 0) == 1.0
        assert state.xmm_hi[0] == d(2.0)

    def test_unpckhpd_self(self, backend):
        state, _ = run("unpckhpd xmm0, xmm0",
                       {"xmm0": d(1.0), "xmm0:hd": d(2.0)}, backend)
        assert state.xmm_lo[0] == d(2.0)
        assert state.xmm_hi[0] == d(2.0)

    def test_punpckldq(self, backend):
        state, _ = run("punpckldq xmm1, xmm0",
                       {"xmm0": 0x44444444_33333333,
                        "xmm1": 0x22222222_11111111}, backend)
        assert state.xmm_lo[0] == 0x11111111_33333333
        assert state.xmm_hi[0] == 0x22222222_44444444

    def test_pshufd_broadcast(self, backend):
        state, _ = run("pshufd $0, xmm1, xmm0",
                       {"xmm1": 0x22222222_11111111}, backend)
        assert state.xmm_lo[0] == 0x11111111_11111111
        assert state.xmm_hi[0] == 0x11111111_11111111

    def test_pshuflw_paper_constant(self, backend):
        # vpshuflw $-2: word selectors [2,3,3,3] -> new lane0 = old lane1.
        state, _ = run("vpshuflw $-2, xmm0, xmm2",
                       {"xmm0": 0xBBBBBBBB_AAAAAAAA}, backend)
        assert state.xmm_lo[2] & 0xFFFFFFFF == 0xBBBBBBBB


class TestGpAndFlags:
    def test_shifts(self, backend):
        state, _ = run("shl $52, rax", {"rax": 1}, backend)
        assert state.gp[0] == 1 << 52
        state, _ = run("shr $4, rax", {"rax": 0xF0}, backend)
        assert state.gp[0] == 0xF
        state, _ = run("sar $4, rax", {"rax": 0xFFFFFFFFFFFFFF00}, backend)
        assert state.gp[0] == 0xFFFFFFFFFFFFFFF0

    def test_cmp_cmov_below(self, backend):
        state, _ = run("cmp rcx, rax\ncmovb rdx, rbx",
                       {"rax": 1, "rcx": 2, "rdx": 42, "rbx": 0}, backend)
        assert state.gp[3] == 42  # 1 < 2 unsigned -> taken

    def test_cmp_cmov_not_taken(self, backend):
        state, _ = run("cmp rcx, rax\ncmovb rdx, rbx",
                       {"rax": 5, "rcx": 2, "rdx": 42, "rbx": 7}, backend)
        assert state.gp[3] == 7

    def test_signed_condition(self, backend):
        # -1 < 1 signed: cmovl taken.
        state, _ = run("cmp rcx, rax\ncmovl rdx, rbx",
                       {"rax": 0xFFFFFFFFFFFFFFFF, "rcx": 1, "rdx": 9,
                        "rbx": 0}, backend)
        assert state.gp[3] == 9

    def test_ucomisd_ae(self, backend):
        # m >= sqrt2 via cmovae (the log kernel's range adjustment).
        asm = "ucomisd xmm2, xmm1\ncmovae rdx, rax"
        state, _ = run(asm, {"xmm1": d(1.5), "xmm2": d(1.41),
                             "rdx": 1, "rax": 0}, backend)
        assert state.gp[0] == 1
        state, _ = run(asm, {"xmm1": d(1.2), "xmm2": d(1.41),
                             "rdx": 1, "rax": 0}, backend)
        assert state.gp[0] == 0

    def test_ucomisd_nan_sets_all(self, backend):
        asm = "ucomisd xmm2, xmm1\ncmovb rdx, rax"
        state, _ = run(asm, {"xmm1": d(math.nan), "xmm2": d(1.0),
                             "rdx": 5, "rax": 0}, backend)
        assert state.gp[0] == 5  # CF set on unordered


class TestConversions:
    def test_cvttsd2si_truncates(self, backend):
        state, _ = run("cvttsd2si xmm0, rax", {"xmm0": d(-2.9)}, backend)
        assert state.gp[0] == 0xFFFFFFFFFFFFFFFE  # -2

    def test_cvtsd2si_rounds_to_even(self, backend):
        state, _ = run("cvtsd2si xmm0, rax", {"xmm0": d(2.5)}, backend)
        assert state.gp[0] == 2
        state, _ = run("cvtsd2si xmm0, rax", {"xmm0": d(3.5)}, backend)
        assert state.gp[0] == 4

    def test_cvttsd2si_saturates(self, backend):
        state, _ = run("cvttsd2si xmm0, rax", {"xmm0": d(1e30)}, backend)
        assert state.gp[0] == 0x8000000000000000
        state, _ = run("cvttsd2si xmm0, rax", {"xmm0": d(math.nan)}, backend)
        assert state.gp[0] == 0x8000000000000000

    def test_cvtsi2sd_negative(self, backend):
        state, _ = run("cvtsi2sd rax, xmm0",
                       {"rax": 0xFFFFFFFFFFFFFFFF}, backend)
        assert xmm_d(state, 0) == -1.0

    def test_cvtsd2ss_and_back(self, backend):
        state, _ = run("cvtsd2ss xmm0, xmm1\ncvtss2sd xmm1, xmm2",
                       {"xmm0": d(0.1)}, backend)
        assert xmm_d(state, 2) == float(np.float32(0.1))

    def test_exp_bit_trick(self, backend):
        # The exp kernel's 2^k construction: (k + 1023) << 52.
        state, _ = run("add $1023, rax\nshl $52, rax\nmovq rax, xmm1",
                       {"rax": 3}, backend)
        assert xmm_d(state, 1) == 8.0


class TestSignals:
    def test_segfault_signal(self, backend):
        state, outcome = run("movsd (rax), xmm0", {"rax": 0xDEAD}, backend)
        assert outcome.signal is Signal.SIGSEGV
