"""Shared fixtures and generators for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.x86.assembler import assemble
from repro.x86.instruction import Instruction
from repro.x86.memory import Segment
from repro.x86.operands import Imm, Mem, Reg32, Reg64, Xmm
from repro.x86.program import Program
from repro.x86.testcase import TestCase

# A scratch segment layout used by randomized program tests: rbx points at
# a writable 64-byte segment, rbp at a read-only table.
SCRATCH_BASE = 0x4000
TABLE_BASE = 0x5000


def scratch_segments():
    rng = random.Random(99)
    table = bytes(rng.getrandbits(8) for _ in range(64))
    return [
        Segment("scratch", SCRATCH_BASE, bytes(64), writable=True),
        Segment("table", TABLE_BASE, table, writable=False),
    ]


def base_testcase(seed: int = 0) -> TestCase:
    """Random register state with valid pointers for memory operands."""
    rng = random.Random(seed)
    inputs = {}
    for i in range(4):  # xmm0-xmm3 as fully arbitrary 64-bit patterns
        inputs[f"xmm{i}"] = rng.getrandbits(64)
        inputs[f"xmm{i}:hd"] = rng.getrandbits(64)
    inputs["rax"] = rng.getrandbits(64)
    inputs["rcx"] = rng.getrandbits(64)
    inputs["rdx"] = rng.getrandbits(64)
    inputs["rbx"] = SCRATCH_BASE
    inputs["rbp"] = TABLE_BASE
    return TestCase(inputs, scratch_segments())


# Operand pools for random program generation.  Memory operands always use
# rbx/rbp bases with in-bounds displacements, so programs may store/load
# but never (necessarily) fault; fault agreement is tested separately.
_XMM_POOL = [Xmm(i) for i in range(4)]
_R64_POOL = [Reg64(0), Reg64(1), Reg64(2)]  # rax, rcx, rdx
_R32_POOL = [Reg32(0), Reg32(1), Reg32(2)]
_IMM_POOL = [Imm(v) for v in (0, 1, 2, 5, 12, 52, 63, 0x3FF,
                              0x3FF0000000000000, 0xFFFFFFFFFFFFFFFF)]
_MEM64_POOL = [Mem(8, 3, d) for d in (0, 8, 16, 24)] + [Mem(8, 5, d) for d in (0, 8, 16)]
_MEM32_POOL = [Mem(4, 3, d) for d in (0, 4, 8, 28)] + [Mem(4, 5, d) for d in (0, 4)]
_MEM128_POOL = [Mem(16, 3, 0), Mem(16, 3, 16), Mem(16, 5, 0)]


def _pool_for(kind):
    from repro.x86.operands import Kind

    return {
        Kind.XMM: _XMM_POOL,
        Kind.R64: _R64_POOL,
        Kind.R32: _R32_POOL,
        Kind.IMM: _IMM_POOL,
        Kind.M64: _MEM64_POOL,
        Kind.M32: _MEM32_POOL,
        Kind.M128: _MEM128_POOL,
    }[kind]


def random_instruction(rng: random.Random,
                       opcode_names=None) -> Instruction:
    """A random valid instruction over the test pools."""
    from repro.x86.opcodes import OPCODES

    names = opcode_names or [n for n, s in OPCODES.items()
                             if s.flavor != "nop"]
    while True:
        name = rng.choice(names)
        spec = OPCODES[name]
        operands = []
        for sl in spec.slots:
            kind = rng.choice(sorted(sl.kinds, key=lambda k: k.value))
            operands.append(rng.choice(_pool_for(kind)))
        if spec.accepts(tuple(operands)):
            return Instruction(name, tuple(operands))


def random_program(seed: int, length: int,
                   opcode_names=None) -> Program:
    rng = random.Random(seed)
    return Program([random_instruction(rng, opcode_names)
                    for _ in range(length)])


@pytest.fixture
def rng():
    return random.Random(1234)


@pytest.fixture
def tiny_target():
    """A small optimizable kernel shared by search tests."""
    return assemble("""
        movq $2.0d, xmm1
        mulsd xmm1, xmm0
        movq $0.5d, xmm2
        mulsd xmm2, xmm0
        addsd xmm0, xmm0
        addsd xmm0, xmm0
    """)
