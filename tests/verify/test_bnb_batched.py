"""Identity and determinism tests for the batched BnB engine.

The batched engine's contract is stronger than soundness: for a fixed
:class:`BnBConfig` its refinement order, leaf tiling, certified bound,
and certificate bytes are those of the serial search — independent of
``jobs``, chunking, prefix sharing, speculation timing, and mid-run
checkpoint/resume.  These tests pin each clause against the reference
engine and against brute-force oracles.
"""

import hashlib
import json
import math
import random

import pytest

from repro.x86.assembler import assemble
from repro.x86.testcase import TestCase

from repro.core.serialize import canonical_json
from repro.kernels.libimf import LIBIMF_KERNELS
from repro.verify import exhaustive_check
from repro.verify.bnb import BnBConfig, BnBVerifier
from repro.verify.partition import BitBox, covered_seed_count

REDUCED_DEGREE = {"sin": 9, "cos": 8, "tan": 9, "log": 12, "exp": 8}


def _poly_pair():
    target = assemble("""
        movq $0.1d, xmm1
        mulsd xmm0, xmm1
        addsd xmm1, xmm0
    """)
    rewrite = assemble("""
        movq $1.1d, xmm1
        mulsd xmm1, xmm0
    """)
    return target, rewrite


def _poly_verifier():
    target, rewrite = _poly_pair()
    return BnBVerifier(target, rewrite, ["xmm0"], {"xmm0": (0.5, 2.0)})


def _libimf_verifier(name):
    factory = LIBIMF_KERNELS[name]
    spec = factory()
    rewrite = factory(REDUCED_DEGREE[name]).program
    return BnBVerifier(spec.program, rewrite, spec.live_outs,
                       dict(spec.ranges))


def _cert_digest(verifier, result, config):
    """Certificate identity: canonical bytes with wall time scrubbed
    (the same scrub the campaign worker applies before storing)."""
    doc = verifier.certificate(result, config=config).to_dict()
    doc.get("stats", {})["wall_time"] = 0.0
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def _partition(result):
    return (result.bound_ulps, result.leaf_bounds,
            [box.bounds for box in result.leaves])


class TestEngineIdentity:
    @pytest.mark.parametrize("name", ["sin", "log"])
    def test_batched_matches_reference_cert(self, name):
        verifier = _libimf_verifier(name)
        ref_cfg = BnBConfig(max_boxes=64, engine="reference")
        bat_cfg = BnBConfig(max_boxes=64, engine="batched")
        ref = verifier.run(ref_cfg)
        bat = verifier.run(bat_cfg)
        assert _partition(bat) == _partition(ref)
        # Certificates must be byte-identical: engine choice is not a
        # certified input, so the digests use the same config.
        cfg = BnBConfig(max_boxes=64)
        assert _cert_digest(verifier, bat, cfg) == \
            _cert_digest(verifier, ref, cfg)

    def test_batched_matches_reference_with_seeds(self):
        verifier = _poly_verifier()
        seeds = ((  # a fabricated counterexample inside the range
            (1.25,), 2.0),)
        ref = verifier.run(BnBConfig(max_boxes=48, seeds=seeds,
                                     engine="reference"))
        bat = verifier.run(BnBConfig(max_boxes=48, seeds=seeds,
                                     engine="batched"))
        assert _partition(bat) == _partition(ref)
        assert bat.seeds_covered == ref.seeds_covered
        assert bat.boxes_pruned == ref.boxes_pruned

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown BnB engine"):
            _poly_verifier().run(BnBConfig(max_boxes=8, engine="turbo"))


class TestJobsInvariance:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_batched_partition_independent_of_jobs(self, jobs):
        verifier = _poly_verifier()
        cfg1 = BnBConfig(max_boxes=48, jobs=1)
        cfgN = BnBConfig(max_boxes=48, jobs=jobs)
        serial = verifier.run(cfg1)
        parallel = verifier.run(cfgN)
        assert _partition(parallel) == _partition(serial)
        assert parallel.boxes_explored == serial.boxes_explored
        assert parallel.rounds == serial.rounds

    def test_fixed_chunk_partition_identical(self):
        verifier = _poly_verifier()
        adaptive = verifier.run(BnBConfig(max_boxes=48, jobs=2))
        fixed = verifier.run(BnBConfig(max_boxes=48, jobs=2, chunk=4))
        assert _partition(fixed) == _partition(adaptive)


class TestPrefixSharing:
    @pytest.mark.parametrize("name", ["sin", "exp"])
    def test_sharing_invisible_in_partition(self, name):
        verifier = _libimf_verifier(name)
        on = verifier.run(BnBConfig(max_boxes=64, prefix_sharing=True))
        off = verifier.run(BnBConfig(max_boxes=64, prefix_sharing=False))
        assert _partition(on) == _partition(off)
        triple = lambda r: (r.stats.boxes, r.stats.concrete_bit_ops,
                            r.stats.widened_bit_ops)
        assert triple(on) == triple(off)


class TestCoveredSeedCount:
    def _oracle(self, boxes, seeds, bound):
        covered = 0
        for idx, err in seeds:
            if not err <= bound:
                continue
            if any(box.contains(idx) for box in boxes):
                covered += 1
        return covered

    def test_matches_bruteforce_oracle(self):
        rng = random.Random(42)
        for _ in range(50):
            ndims = rng.randint(1, 3)
            boxes = []
            for _ in range(rng.randint(0, 12)):
                bounds = []
                for _ in range(ndims):
                    lo = rng.randint(0, 100)
                    bounds.append((lo, lo + rng.randint(0, 30)))
                boxes.append(BitBox(tuple(bounds)))
            seeds = []
            for _ in range(rng.randint(0, 10)):
                idx = tuple(rng.randint(0, 130) for _ in range(ndims))
                err = rng.choice([0.0, 1.5, 7.0, math.inf, math.nan])
                seeds.append((idx, err))
            bound = rng.choice([0.0, 2.0, 10.0, math.inf])
            assert covered_seed_count(boxes, seeds, bound) == \
                self._oracle(boxes, seeds, bound)

    def test_nan_error_never_covered(self):
        box = BitBox(((0, 10),))
        assert covered_seed_count([box], [((5,), math.nan)], math.inf) == 0

    def test_empty_inputs(self):
        assert covered_seed_count([], [((0,), 0.0)], 1.0) == 0
        assert covered_seed_count([BitBox(((0, 1),))], [], 1.0) == 0


class TestCheckpointResume:
    """Satellite: a mid-round interrupt/resume under the batched engine
    reproduces the uninterrupted run bit-for-bit — bound, leaf tiling,
    and certificate digest — at jobs=1 and jobs=4."""

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_resume_bit_identical(self, jobs):
        verifier = _poly_verifier()
        config = BnBConfig(max_boxes=64, jobs=jobs)
        baseline = verifier.run(config)

        snapshots = []
        verifier.run(config, checkpoint_rounds=3,
                     on_checkpoint=snapshots.append)
        assert snapshots, "no checkpoints captured"
        mid = snapshots[len(snapshots) // 2]
        assert 0 < mid.rounds < baseline.rounds

        # Serialize through JSON: resume must survive the wire format.
        from repro.verify.bnb import BnBCheckpoint
        restored = BnBCheckpoint.from_dict(
            json.loads(json.dumps(mid.to_dict())))
        resumed = verifier.run(config, resume=restored)

        assert _partition(resumed) == _partition(baseline)
        assert resumed.boxes_explored == baseline.boxes_explored
        assert resumed.rounds == baseline.rounds
        assert resumed.boxes_pruned == baseline.boxes_pruned
        assert _cert_digest(verifier, resumed, config) == \
            _cert_digest(verifier, baseline, config)

    def test_resume_under_reference_engine_matches_batched(self):
        # Checkpoints are engine-portable: a snapshot written by one
        # engine resumes under the other to the identical partition.
        verifier = _poly_verifier()
        bat_cfg = BnBConfig(max_boxes=64, engine="batched")
        ref_cfg = BnBConfig(max_boxes=64, engine="reference")
        baseline = verifier.run(bat_cfg)
        snapshots = []
        verifier.run(bat_cfg, checkpoint_rounds=5,
                     on_checkpoint=snapshots.append)
        resumed = verifier.run(ref_cfg, resume=snapshots[0])
        assert _partition(resumed) == _partition(baseline)


class TestCheckpointThrottle:
    def test_wall_clock_gate_suppresses_snapshots(self):
        verifier = _poly_verifier()
        snapshots = []
        verifier.run(BnBConfig(max_boxes=64),
                     checkpoint_rounds=1,
                     on_checkpoint=snapshots.append,
                     checkpoint_seconds=3600.0)
        # The interval clock starts at run() entry, so a fast search
        # never reaches the first wall-clock gate.
        assert snapshots == []

    def test_zero_interval_checkpoints_every_gated_round(self):
        verifier = _poly_verifier()
        snapshots = []
        result = verifier.run(BnBConfig(max_boxes=64),
                              checkpoint_rounds=1,
                              on_checkpoint=snapshots.append,
                              checkpoint_seconds=0.0)
        # One per round after round 0, plus one on the terminating
        # iteration (the gate runs before the budget check).
        assert len(snapshots) == result.rounds


def _cex_inputs(result):
    """TestCase has no structural __eq__; compare the live-in bits."""
    if result.counterexample is None:
        return None
    return dict(result.counterexample.inputs)


class TestExhaustiveBackends:
    def test_backends_agree_bit_for_bit(self):
        target, rewrite = _poly_pair()
        ranges = {"xmm0": (0.5, 2.0)}
        results = {
            backend: exhaustive_check(target, rewrite, ["xmm0"], ranges,
                                      lambda: TestCase({}),
                                      bits_per_input=8, backend=backend)
            for backend in ("emulator", "jit", "vector")
        }
        baseline = results["emulator"]
        for backend, result in results.items():
            assert result.max_ulps == baseline.max_ulps, backend
            assert result.cases_checked == baseline.cases_checked, backend
            assert _cex_inputs(result) == _cex_inputs(baseline), backend

    def test_default_backend_is_vector(self):
        import inspect
        sig = inspect.signature(exhaustive_check)
        assert sig.parameters["backend"].default == "vector"

    def test_chunking_preserves_first_counterexample(self):
        import repro.verify.exhaustive as ex
        target, rewrite = _poly_pair()
        ranges = {"xmm0": (0.5, 2.0)}
        big = exhaustive_check(target, rewrite, ["xmm0"], ranges,
                               lambda: TestCase({}), bits_per_input=9)
        original = ex._BATCH
        ex._BATCH = 17  # force many ragged chunks
        try:
            small = exhaustive_check(target, rewrite, ["xmm0"], ranges,
                                     lambda: TestCase({}),
                                     bits_per_input=9)
        finally:
            ex._BATCH = original
        assert small.max_ulps == big.max_ulps
        assert small.cases_checked == big.cases_checked
        assert _cex_inputs(small) == _cex_inputs(big)
