"""Tests for the symbolic executor and its canonicalization rules."""

import pytest

from repro.x86.assembler import assemble
from repro.x86.memory import Memory, Segment

from repro.verify.symbolic import (
    Const,
    InputNode,
    OpNode,
    SymbolicUnsupported,
    concat,
    extract,
    op,
    symbolic_execute,
)


class TestNodeCanonicalization:
    def test_extract_full_width_is_identity(self):
        x = InputNode("x", 64)
        assert extract(x, 0, 64) is x

    def test_extract_of_extract_composes(self):
        x = InputNode("x", 64)
        inner = extract(x, 8, 32)
        assert extract(inner, 8, 16) == extract(x, 16, 16)

    def test_extract_of_const_folds(self):
        c = Const(0xAABBCCDD, 32)
        assert extract(c, 8, 16) == Const(0xBBCC, 16)

    def test_concat_of_adjacent_extracts_merges(self):
        x = InputNode("x", 64)
        lo = extract(x, 0, 32)
        hi = extract(x, 32, 32)
        assert concat(lo, hi) is x

    def test_concat_consts_fold(self):
        assert concat(Const(0x1111, 16), Const(0x2222, 16)) == \
            Const(0x22221111, 32)

    def test_extract_through_concat(self):
        a = InputNode("a", 32)
        b = InputNode("b", 32)
        both = concat(a, b)
        assert extract(both, 0, 32) is a
        assert extract(both, 32, 32) is b

    def test_out_of_range_extract_raises(self):
        with pytest.raises(SymbolicUnsupported):
            extract(InputNode("x", 32), 16, 32)

    def test_commutative_sorting(self):
        a = InputNode("a", 32)
        b = InputNode("b", 32)
        assert op("addss", a, b, width=32) == op("addss", b, a, width=32)
        # subtraction is not commutative
        assert op("subss", a, b, width=32) != op("subss", b, a, width=32)

    def test_xor_self_is_zero(self):
        a = InputNode("a", 64)
        assert op("xor", a, a, width=64) == Const(0, 64)

    def test_and_self_is_identity(self):
        a = InputNode("a", 64)
        assert op("and", a, a, width=64) is a

    def test_nodes_hashable_and_comparable(self):
        a = op("mulsd", InputNode("x", 64), InputNode("y", 64), width=64)
        b = op("mulsd", InputNode("y", 64), InputNode("x", 64), width=64)
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestSymbolicExecution:
    def test_register_arithmetic_builds_dag(self):
        program = assemble("addsd xmm1, xmm0")
        state = symbolic_execute(program, Memory())
        result = state.xmm[0].read64(0)
        assert isinstance(result, OpNode)
        assert result.op == "addsd"

    def test_constant_table_reads_fold(self):
        table = Segment("t", 0x1000, (42).to_bytes(8, "little"),
                        writable=False)
        program = assemble("movsd (rax), xmm0")
        state = symbolic_execute(program, Memory([table]),
                                 concrete_gp={0: 0x1000})
        assert state.xmm[0].read64(0) == Const(42, 64)

    def test_writable_memory_reads_are_inputs(self):
        buf = Segment("buf", 0x1000, bytes(8), writable=True)
        program = assemble("movsd (rax), xmm0")
        state = symbolic_execute(program, Memory([buf]),
                                 concrete_gp={0: 0x1000})
        node = state.xmm[0].read64(0)
        assert isinstance(node, InputNode)
        assert node.name == "buf+0"

    def test_stack_spill_reload_cancels(self):
        stack = Segment("stack", 0x7000, bytes(64), writable=True)
        program = assemble("""
            movq xmm0, 16(rsp)
            movsd 16(rsp), xmm1
        """)
        state = symbolic_execute(program, Memory([stack]),
                                 concrete_gp={4: 0x7000})
        assert state.xmm[1].read64(0) == InputNode("x0l", 64)

    def test_partial_reload_of_spill(self):
        stack = Segment("stack", 0x7000, bytes(64), writable=True)
        program = assemble("""
            movq xmm0, 16(rsp)
            movss 20(rsp), xmm1
        """)
        state = symbolic_execute(program, Memory([stack]),
                                 concrete_gp={4: 0x7000})
        assert state.xmm[1].read32(0) == extract(InputNode("x0l", 64), 32, 32)

    def test_composite_reload_of_two_spills(self):
        stack = Segment("stack", 0x7000, bytes(64), writable=True)
        program = assemble("""
            movss xmm0, 16(rsp)
            movss xmm1, 20(rsp)
            movq 16(rsp), xmm2
        """)
        state = symbolic_execute(program, Memory([stack]),
                                 concrete_gp={4: 0x7000})
        lane0 = state.xmm[2].read32(0)
        lane1 = state.xmm[2].read32(1)
        assert lane0 == extract(InputNode("x0l", 64), 0, 32)
        assert lane1 == extract(InputNode("x1l", 64), 0, 32)

    def test_symbolic_address_unsupported(self):
        program = assemble("movsd (rax), xmm0")
        with pytest.raises(SymbolicUnsupported):
            symbolic_execute(program, Memory())  # rax symbolic

    def test_unsupported_opcode(self):
        program = assemble("cvttsd2si xmm0, rax")
        with pytest.raises(SymbolicUnsupported):
            symbolic_execute(program, Memory())

    def test_packed_decomposes_to_scalar_ops(self):
        # addps lane 0 must canonicalize identically to addss.
        packed = symbolic_execute(assemble("addps xmm1, xmm0"), Memory())
        scalar = symbolic_execute(assemble("addss xmm1, xmm0"), Memory())
        assert packed.xmm[0].read32(0) == scalar.xmm[0].read32(0)

    def test_pshuflw_aligned_pairs_are_lane_moves(self):
        # imm -2 -> word selectors [2,3,3,3]: lane0 becomes old lane1.
        state = symbolic_execute(assemble("vpshuflw $-2, xmm0, xmm2"),
                                 Memory())
        src = symbolic_execute(assemble("nop"), Memory())
        assert state.xmm[2].read32(0) == src.xmm[0].read32(1)
