"""Tests for the three static verification techniques."""

import math
import random

import pytest

from repro.x86.assembler import assemble
from repro.x86.memory import Memory
from repro.x86.testcase import TestCase

from repro.kernels.aek import vector as V
from repro.verify import (
    IntervalUnsupported,
    VerifyOutcome,
    check_equivalent_uf,
    exhaustive_check,
    interval_ulp_bound,
)
from repro.verify.interval import IntervalD


class TestUf:
    def test_data_movement_equivalence(self):
        a = assemble("""
            movsd xmm1, xmm3
            addsd xmm0, xmm3
            movsd xmm3, xmm0
        """)
        b = assemble("addsd xmm1, xmm0")
        assert check_equivalent_uf(a, b, ["xmm0"]).proved

    def test_commutativity_proved(self):
        a = assemble("addsd xmm1, xmm0")
        b = assemble("""
            movsd xmm0, xmm2
            movsd xmm1, xmm0
            addsd xmm2, xmm0
        """)
        assert check_equivalent_uf(a, b, ["xmm0"]).proved

    def test_reassociation_not_proved(self):
        # (x+y)+z vs x+(y+z): not bit-wise equal, must stay UNKNOWN.
        a = assemble("addsd xmm1, xmm0\naddsd xmm2, xmm0")
        b = assemble("addsd xmm2, xmm1\naddsd xmm1, xmm0")
        result = check_equivalent_uf(a, b, ["xmm0"])
        assert result.outcome is VerifyOutcome.UNKNOWN

    def test_different_programs_unknown(self):
        a = assemble("addsd xmm1, xmm0")
        b = assemble("mulsd xmm1, xmm0")
        assert not check_equivalent_uf(a, b, ["xmm0"]).proved

    def test_unsupported_is_unknown(self):
        a = assemble("cvttsd2si xmm0, rax\ncvtsi2sd rax, xmm0")
        result = check_equivalent_uf(a, a, ["xmm0"])
        assert result.outcome is VerifyOutcome.UNKNOWN
        assert "not in the UF-checkable subset" in result.detail

    @pytest.mark.parametrize("name", ["scale", "dot", "add"])
    def test_aek_paper_rewrites_proved(self, name):
        spec = V.AEK_KERNELS[name]()
        rewrite = V.AEK_REWRITES[name]()
        result = check_equivalent_uf(
            spec.program, rewrite, spec.live_outs,
            memory=Memory(V.aek_segments()),
            concrete_gp=V.CONCRETE_GP_INDICES)
        assert result.proved, result.detail

    def test_delta_rewrite_not_provable(self):
        # The imprecise rewrite drops terms; UF must not prove it.
        spec = V.delta_kernel()
        result = check_equivalent_uf(
            spec.program, V.delta_rewrite(), spec.live_outs,
            memory=Memory(V.aek_segments()),
            concrete_gp=V.CONCRETE_GP_INDICES)
        assert result.outcome is VerifyOutcome.UNKNOWN


class TestInterval:
    def test_soundness_on_samples(self):
        # The concrete error must never exceed the interval bound.
        target = assemble("movq $2.0d, xmm1\nmulsd xmm1, xmm0")
        rewrite = assemble("addsd xmm0, xmm0")
        bound = interval_ulp_bound(target, rewrite, ["xmm0"],
                                   {"xmm0": (0.5, 2.0)}, max_boxes=64)
        from repro.core.runner import Runner
        from repro.fp.ulp import ulp_distance_bits

        runner = Runner(["xmm0"])
        rng = random.Random(0)
        for _ in range(100):
            x = rng.uniform(0.5, 2.0)
            tc = TestCase.from_values({"xmm0": x})
            a, _ = runner.run_program(target, tc)
            b, _ = runner.run_program(rewrite, tc)
            observed = ulp_distance_bits(list(a.values())[0],
                                         list(b.values())[0])
            assert observed <= bound.bound_ulps

    def test_subdivision_tightens(self):
        target = assemble("mulsd xmm0, xmm0")
        rewrite = assemble("mulsd xmm0, xmm0")
        coarse = interval_ulp_bound(target, rewrite, ["xmm0"],
                                    {"xmm0": (1.0, 4.0)}, max_boxes=2)
        fine = interval_ulp_bound(target, rewrite, ["xmm0"],
                                  {"xmm0": (1.0, 4.0)}, max_boxes=128)
        assert fine.bound_ulps <= coarse.bound_ulps

    def test_bitlevel_log_kernel_now_analyzes(self):
        # The exponent-extraction fragment (movq/shr/and/or/cmov/cvtsi2sd)
        # is handled by the integer-interval GP domain; widened transfers
        # are counted in the telemetry.
        from repro.kernels.libimf import log_kernel

        spec = log_kernel()
        bound = interval_ulp_bound(spec.program, spec.program,
                                   spec.live_outs, dict(spec.ranges),
                                   max_boxes=8)
        assert bound.complete
        assert math.isfinite(bound.bound_ulps)
        assert bound.widened_bit_ops > 0

    def test_genuinely_unsupported_still_raises(self):
        # A 32-bit conversion destination has no interval transfer.
        program = assemble("cvttsd2si xmm0, eax\n")
        with pytest.raises(IntervalUnsupported):
            interval_ulp_bound(program, program, ["rax"],
                               {"xmm0": (1.0, 2.0)}, max_boxes=2)

    def test_division_through_zero_is_top_interval(self):
        target = assemble("divsd xmm1, xmm0")
        bound = interval_ulp_bound(target, target, ["xmm0"],
                                   {"xmm0": (1.0, 2.0),
                                    "xmm1": (-1.0, 1.0)}, max_boxes=2)
        assert bound.bound_ulps >= 0  # completes soundly (inf endpoints)

    def test_delta_static_bound_exceeds_dynamic(self):
        spec = V.delta_kernel()
        ranges = dict(spec.ranges)
        ranges.update(V.delta_mem_ranges())
        bound = interval_ulp_bound(
            spec.program, V.delta_rewrite(), spec.live_outs, ranges,
            memory=Memory(V.aek_segments()),
            concrete_gp=V.CONCRETE_GP_INDICES, max_boxes=64)
        # The paper's comparison: the static bound is orders of magnitude
        # above what testing/validation observes (~thousands of ULPs).
        assert bound.bound_ulps > 1e6

    def test_interval_rejects_nan_range(self):
        with pytest.raises(IntervalUnsupported):
            IntervalD(2.0, 1.0)


class TestExhaustive:
    def test_identical_programs_bitwise_equal(self):
        program = assemble("mulsd xmm0, xmm0")
        result = exhaustive_check(program, program, ["xmm0"],
                                  {"xmm0": (-2.0, 2.0)},
                                  lambda: TestCase({}), bits_per_input=8)
        assert result.bitwise_equal
        assert result.cases_checked == 256
        assert result.counterexample is None

    def test_finds_counterexample(self):
        target = assemble("addsd xmm0, xmm0")
        wrong = assemble("mulsd xmm0, xmm0")
        result = exhaustive_check(target, wrong, ["xmm0"],
                                  {"xmm0": (1.0, 3.0)},
                                  lambda: TestCase({}), bits_per_input=4)
        assert not result.bitwise_equal
        assert result.counterexample is not None

    def test_case_count_is_exponential_in_inputs(self):
        program = assemble("addsd xmm1, xmm0")
        result = exhaustive_check(program, program, ["xmm0"],
                                  {"xmm0": (0.0, 1.0), "xmm1": (0.0, 1.0)},
                                  lambda: TestCase({}), bits_per_input=4)
        assert result.cases_checked == 16 * 16

    def test_signal_divergence_is_infinite_error(self):
        target = assemble("addsd xmm0, xmm0")
        faulting = assemble("movsd (rax), xmm0")
        result = exhaustive_check(target, faulting, ["xmm0"],
                                  {"xmm0": (0.0, 1.0)},
                                  lambda: TestCase({}), bits_per_input=2)
        assert result.max_ulps == math.inf
