"""Soundness and tightness tests for the relational domain.

The relational transfer's contract has two halves:

* **soundness** — per box, the reported bound dominates the true
  live-out ULP distance at every input in the box (checked against
  exhaustive grids and direct execution oracles);
* **tightness** — per box, the reported bound is never looser than the
  separate domain's (it is ``min(separate, difference window)`` by
  construction), and on correlated rewrites it is strictly tighter.
"""

import math
import random

import pytest

from repro.x86.assembler import assemble
from repro.x86.testcase import TestCase

from repro.fp.ulp import ulp_distance
from repro.kernels.libimf import LIBIMF_KERNELS
from repro.verify import exhaustive_check
from repro.verify.bnb import BnBConfig, BnBVerifier
from repro.verify.interval import IntervalD, IntervalTransfer
from repro.verify.partition import BitBox
from repro.verify.relational.diffbound import window_ulp_bound
from repro.verify.relational.domain import (
    RelationalTransfer,
    shared_prefix_len,
    transfer_class,
)

REDUCED_DEGREE = {"sin": 9, "cos": 8, "tan": 9, "log": 12, "exp": 8}


def _poly_pair():
    """1.1*x two ways — a real, nonzero ULP error on most inputs."""
    target = assemble("""
        movq $0.1d, xmm1
        mulsd xmm0, xmm1
        addsd xmm1, xmm0
    """)
    rewrite = assemble("""
        movq $1.1d, xmm1
        mulsd xmm1, xmm0
    """)
    return target, rewrite


def _libimf_pair(name):
    factory = LIBIMF_KERNELS[name]
    spec = factory()
    return spec, factory(REDUCED_DEGREE[name]).program


class TestWindowBound:
    def test_zero_difference_is_zero_ulps(self):
        hull = IntervalD(1.0, 2.0)
        diff = IntervalD(0.0, 0.0)
        assert window_ulp_bound("f64", hull, hull, diff) == 0.0

    def test_unknown_difference_is_infinite(self):
        hull = IntervalD(1.0, 2.0)
        assert window_ulp_bound("f64", hull, hull, None) == math.inf

    def test_window_dominates_true_distance(self):
        # For random (t, r) drawn from random hulls, the window bound
        # computed from hulls + the exact difference interval must
        # dominate the true ULP distance.
        rng = random.Random(7)
        for _ in range(500):
            scale = 10.0 ** rng.randint(-300, 300)
            sign = rng.choice([-1.0, 1.0])
            t = sign * rng.random() * scale
            r = t + rng.choice([-1.0, 1.0]) * rng.random() * scale \
                * 10.0 ** rng.randint(-18, 0)
            th = IntervalD(min(t, r * 0.5, -abs(t) * 0.25),
                           max(t, r * 2.0, abs(t)))
            rh = IntervalD(min(r, th.lo), max(r, th.hi))
            d = t - r
            diff = IntervalD(min(d, 0.0) - abs(d) * 1e-16,
                             max(d, 0.0) + abs(d) * 1e-16)
            bound = window_ulp_bound("f64", th, rh, diff)
            assert ulp_distance(t, r) <= bound, (t, r, bound)

    def test_tight_on_adjacent_floats(self):
        t = 1.0
        r = math.nextafter(1.0, 2.0)
        hull = IntervalD(1.0, r)
        diff = IntervalD(-(r - t), r - t)
        bound = window_ulp_bound("f64", hull, hull, diff)
        assert 1.0 <= bound <= 2.0


class TestSharedPrefix:
    def test_polynomials_share_nothing(self):
        target, rewrite = _poly_pair()
        assert shared_prefix_len(target, rewrite) == 0

    @pytest.mark.parametrize("name,minimum",
                             [("exp", 5), ("log", 10)])
    def test_range_reduction_prefix_detected(self, name, minimum):
        # exp/log share their whole bit-level range-reduction run; only
        # the polynomial tail differs between degrees.
        spec, rewrite = _libimf_pair(name)
        assert shared_prefix_len(spec.program, rewrite) >= minimum

    def test_identical_programs_share_everything(self):
        target, _ = _poly_pair()
        n = shared_prefix_len(target, target)
        assert n == sum(1 for i in target.slots if i.opcode != "nop")


class TestTransferClass:
    def test_known_domains(self):
        assert transfer_class("separate") is IntervalTransfer
        assert transfer_class("relational") is RelationalTransfer

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError, match="unknown verify domain"):
            transfer_class("entangled")

    def test_verifier_rejects_unknown_domain(self):
        target, rewrite = _poly_pair()
        with pytest.raises(ValueError, match="unknown verify domain"):
            BnBVerifier(target, rewrite, ["xmm0"], {"xmm0": (0.5, 2.0)},
                        domain="entangled")


class TestNeverLooser:
    """Per-box guarantee: relational <= separate on the same partition."""

    def _boxes(self, transfer, rng, count=40):
        root = transfer.root
        boxes = [root]
        for _ in range(count):
            box = rng.choice(boxes)
            if box.splittable:
                boxes.extend(box.split(box.widest_dim()))
        return boxes

    @pytest.mark.parametrize("name", ["exp", "tan", "sin"])
    def test_per_box_on_libimf(self, name):
        spec, rewrite = _libimf_pair(name)
        ranges = dict(spec.ranges)
        sep = IntervalTransfer(spec.program, rewrite,
                               list(spec.live_outs), ranges)
        rel = RelationalTransfer(spec.program, rewrite,
                                 list(spec.live_outs), ranges)
        assert rel.relational_error is None
        rng = random.Random(3)
        for box in self._boxes(sep, rng):
            s_bound, _ = sep.analyze(box)
            r_bound, _ = rel.analyze(box)
            assert r_bound <= s_bound, box.bounds

    def test_strictly_tighter_on_correlated_kernels(self):
        # The acceptance floor at box-budget parity: <= on all five
        # kernels and strictly tighter on at least three.
        tighter = 0
        for name in sorted(REDUCED_DEGREE):
            spec, rewrite = _libimf_pair(name)
            bounds = {}
            for domain in ("separate", "relational"):
                verifier = BnBVerifier(spec.program, rewrite,
                                       spec.live_outs, dict(spec.ranges),
                                       domain=domain)
                bounds[domain] = verifier.run(
                    BnBConfig(max_boxes=96)).bound_ulps
            assert bounds["relational"] <= bounds["separate"], name
            if bounds["relational"] < bounds["separate"]:
                tighter += 1
        assert tighter >= 3


class TestRelationalSoundness:
    def test_poly_bound_dominates_exhaustive(self):
        target, rewrite = _poly_pair()
        ranges = {"xmm0": (0.5, 2.0)}
        verifier = BnBVerifier(target, rewrite, ["xmm0"], ranges,
                               domain="relational")
        result = verifier.run(BnBConfig(max_boxes=64))
        assert result.complete
        assert result.domain == "relational"
        exact = exhaustive_check(target, rewrite, ["xmm0"], ranges,
                                 lambda: TestCase({}), bits_per_input=10)
        assert exact.max_ulps <= result.bound_ulps

    @pytest.mark.parametrize("name", ["exp", "tan"])
    def test_libimf_bound_dominates_exhaustive(self, name):
        spec, rewrite = _libimf_pair(name)
        verifier = BnBVerifier(spec.program, rewrite, spec.live_outs,
                               dict(spec.ranges), domain="relational")
        result = verifier.run(BnBConfig(max_boxes=128))
        assert result.complete
        exact = exhaustive_check(spec.program, rewrite, spec.live_outs,
                                 dict(spec.ranges), spec.base_testcase,
                                 bits_per_input=9)
        assert exact.max_ulps <= result.bound_ulps

    def test_identical_programs_bound_zero(self):
        # The identity rule: shared DAG keys give a zero difference,
        # so identical programs certify 0 ULPs on the root box alone.
        target, _ = _poly_pair()
        verifier = BnBVerifier(target, target, ["xmm0"],
                               {"xmm0": (0.5, 2.0)}, domain="relational")
        result = verifier.run(BnBConfig(max_boxes=4))
        assert result.bound_ulps == 0.0


class TestPerLocationBounds:
    def test_satellite_per_live_out_contributions(self):
        target, rewrite = _poly_pair()
        verifier = BnBVerifier(target, rewrite, ["xmm0"],
                               {"xmm0": (0.5, 2.0)})
        result = verifier.run(BnBConfig(max_boxes=32))
        assert set(result.per_location_bounds) == {"xmm0:d"}
        # Single live-out: its certified per-output bound IS the
        # headline bound (max over leaves of the only contribution).
        assert result.per_location_bounds["xmm0:d"] == result.bound_ulps

    def test_multi_output_bounds_sum_to_at_least_headline(self):
        target = assemble("""
            addsd xmm1, xmm0
            addsd xmm1, xmm1
        """)
        rewrite = assemble("""
            addsd xmm1, xmm0
            movq $2.0d, xmm2
            mulsd xmm2, xmm1
        """)
        verifier = BnBVerifier(target, rewrite, ["xmm0", "xmm1"],
                               {"xmm0": (0.5, 2.0), "xmm1": (0.5, 2.0)})
        result = verifier.run(BnBConfig(max_boxes=32))
        assert set(result.per_location_bounds) == {"xmm0:d", "xmm1:d"}
        # The headline bound sums contributions within one leaf; the
        # per-location maxima can only be >= that leaf's split.
        assert sum(result.per_location_bounds.values()) >= \
            result.bound_ulps
