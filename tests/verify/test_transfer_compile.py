"""Differential tests for the translate-once transfer compiler.

The compiled per-instruction closures (:mod:`repro.verify.compile`)
must replicate the interpretive abstract interpreter bit-for-bit:
identical bounds, per-live-out maps, stats accounting, and error
strings, on every shipped kernel and on random subdivisions of each
verification domain.  Prefix sharing (:meth:`IntervalTransfer.
analyze_split`) must likewise be invisible in results — it may only
save time.
"""

import math
import random

import pytest

from repro.x86.assembler import assemble
from repro.x86.memory import Memory

from repro.kernels.aek import vector as V
from repro.kernels.libimf import LIBIMF_KERNELS
from repro.verify.compile import MEM_KEY, compile_transfer
from repro.verify.interval import IntervalTransfer, IntervalUnsupported

REDUCED_DEGREE = {"sin": 9, "cos": 8, "tan": 9, "log": 12, "exp": 8}


def _poly_pair():
    target = assemble("""
        movq $0.1d, xmm1
        mulsd xmm0, xmm1
        addsd xmm1, xmm0
    """)
    rewrite = assemble("""
        movq $1.1d, xmm1
        mulsd xmm1, xmm0
    """)
    return target, rewrite


def _libimf_transfer(name):
    factory = LIBIMF_KERNELS[name]
    spec = factory()
    rewrite = factory(REDUCED_DEGREE[name]).program
    return IntervalTransfer(spec.program, rewrite, spec.live_outs,
                            dict(spec.ranges))


def _delta_transfer():
    spec = V.delta_kernel()
    ranges = dict(spec.ranges)
    ranges.update(V.delta_mem_ranges())
    return IntervalTransfer(spec.program, V.delta_rewrite(),
                            spec.live_outs, ranges,
                            memory=Memory(V.aek_segments()),
                            concrete_gp=V.CONCRETE_GP_INDICES)


def _sample_boxes(transfer, rng, count=24):
    """The root plus a random walk of subdivision boxes below it."""
    boxes = [transfer.root]
    frontier = [transfer.root]
    while len(boxes) < count and frontier:
        box = frontier.pop(rng.randrange(len(frontier)))
        if not box.splittable:
            continue
        dim = box.widest_dim() if rng.random() < 0.7 else \
            rng.randrange(len(box.bounds))
        if box.width(dim) == 0:
            dim = box.widest_dim()
        left, right = box.split(dim)
        boxes.extend((left, right))
        frontier.extend((left, right))
    return boxes[:count]


def _stats_triple(stats):
    return (stats.boxes, stats.concrete_bit_ops, stats.widened_bit_ops)


class TestCompiledMatchesInterpretive:
    @pytest.mark.parametrize("name", sorted(LIBIMF_KERNELS))
    def test_libimf_differential(self, name):
        transfer = _libimf_transfer(name)
        rng = random.Random(hash(name) & 0xFFFF)
        for box in _sample_boxes(transfer, rng):
            total_c, per_c, stats_c = transfer.analyze_with_stats(box)
            total_i, per_i, stats_i = transfer.analyze_interpretive(box)
            assert total_c == total_i
            assert per_c == per_i
            assert _stats_triple(stats_c) == _stats_triple(stats_i)

    def test_delta_differential(self):
        # Memory-backed dims, concrete GP state, and MemLoc live-outs.
        transfer = _delta_transfer()
        rng = random.Random(7)
        for box in _sample_boxes(transfer, rng, count=16):
            total_c, per_c, stats_c = transfer.analyze_with_stats(box)
            total_i, per_i, stats_i = transfer.analyze_interpretive(box)
            assert total_c == total_i
            assert per_c == per_i
            assert _stats_triple(stats_c) == _stats_triple(stats_i)

    def test_poly_differential(self):
        target, rewrite = _poly_pair()
        transfer = IntervalTransfer(target, rewrite, ["xmm0"],
                                    {"xmm0": (0.5, 2.0)})
        rng = random.Random(0)
        for box in _sample_boxes(transfer, rng):
            total_c, per_c, _ = transfer.analyze_with_stats(box)
            total_i, per_i, _ = transfer.analyze_interpretive(box)
            assert total_c == total_i
            assert per_c == per_i


class TestFirstTouch:
    def test_poly_target_touch_points(self):
        target, _ = _poly_pair()
        plan = compile_transfer(target)
        # movq $0.1d, xmm1 writes xmm1 only; mulsd xmm0, xmm1 is the
        # first step that can read the xmm0 input dimension.
        assert plan.first_touch(("x", 0)) == 1
        assert plan.first_touch(("x", 1)) == 0
        # No data-memory access anywhere: the memory "prefix" is the
        # whole program.
        assert plan.first_touch(MEM_KEY) == len(plan.steps)

    def test_histogram_counts_compiled_steps(self):
        target, _ = _poly_pair()
        plan = compile_transfer(target)
        assert plan.histogram == {"movq": 1, "mulsd": 1, "addsd": 1}
        assert len(plan.steps) == len(plan.opcodes) == len(plan.touches)

    def test_nop_slots_dropped(self):
        program = assemble("""
            nop
            addsd xmm0, xmm0
            nop
        """)
        plan = compile_transfer(program)
        assert plan.opcodes == ["addsd"]


class TestSplitSharing:
    @pytest.mark.parametrize("name", ["sin", "log"])
    def test_sharing_identical_to_scratch(self, name):
        """Walking down left children, prefix sharing never changes the
        (bound, per_loc, stats delta, error) of either child."""
        transfer = _libimf_transfer(name)
        box = transfer.root
        for _ in range(12):
            if not box.splittable:
                break
            dim = box.widest_dim()
            shared = transfer.analyze_split(box, dim, sharing=True)
            scratch = transfer.analyze_split(box, dim, sharing=False)
            assert shared[0] == scratch[0]  # left UnitResult
            assert shared[1] == scratch[1]  # right UnitResult
            box = box.split(dim)[0]

    def test_delta_sharing_identical(self):
        transfer = _delta_transfer()
        box = transfer.root
        for _ in range(8):
            if not box.splittable:
                break
            dim = box.widest_dim()
            shared = transfer.analyze_split(box, dim, sharing=True)
            scratch = transfer.analyze_split(box, dim, sharing=False)
            assert shared[0] == scratch[0]
            assert shared[1] == scratch[1]
            box = box.split(dim)[1]  # right children this time


class TestProfile:
    def test_profile_populates_op_seconds(self):
        target, rewrite = _poly_pair()
        transfer = IntervalTransfer(target, rewrite, ["xmm0"],
                                    {"xmm0": (0.5, 2.0)}, profile=True)
        _, op_secs = transfer.analyze_unit(transfer.root)
        assert op_secs
        assert set(op_secs) <= set(transfer.op_histogram)
        assert all(s >= 0.0 for s in op_secs.values())

    def test_no_profile_no_op_seconds(self):
        target, rewrite = _poly_pair()
        transfer = IntervalTransfer(target, rewrite, ["xmm0"],
                                    {"xmm0": (0.5, 2.0)})
        _, op_secs = transfer.analyze_unit(transfer.root)
        assert op_secs is None


class TestUnsupportedParity:
    def test_error_string_matches_interpreter(self):
        # Non-zeroing xorpd is outside the interval fragment: the
        # compiled closure must fail with the interpreter's message.
        target = assemble("xorpd xmm1, xmm0\n")
        _, rewrite = _poly_pair()
        transfer = IntervalTransfer(target, rewrite, ["xmm0"],
                                    {"xmm0": (0.5, 2.0)})
        with pytest.raises(IntervalUnsupported) as excinfo:
            transfer.analyze_interpretive(transfer.root)
        (bound, per_loc, delta, error), op_secs = \
            transfer.analyze_unit(transfer.root)
        assert bound == math.inf
        assert per_loc is None
        assert delta == (1, 0, 0)
        assert error == str(excinfo.value)
        assert op_secs is None

    def test_split_reports_failure_on_both_children(self):
        target = assemble("xorpd xmm1, xmm0\n")
        _, rewrite = _poly_pair()
        transfer = IntervalTransfer(target, rewrite, ["xmm0"],
                                    {"xmm0": (0.5, 2.0)})
        box = transfer.root
        l_res, r_res, _ = transfer.analyze_split(box, box.widest_dim())
        assert l_res[0] == math.inf and l_res[3] is not None
        assert r_res[0] == math.inf and r_res[3] is not None
        assert l_res[3] == r_res[3]
