"""Differential soundness tests for the branch-and-bound verifier.

Three obligations, each checked against an independent oracle:

* the certified bound dominates an exhaustive enumeration of a
  quantized subdomain (exact on its grid) and the max error a
  Geweke-converged MCMC validation run observed;
* the independent checker accepts genuine certificates and rejects
  tampered ones (loosened leaf bound, dropped leaf, duplicated leaf);
* every shipped kernel — the five libimf benchmarks and the aek delta
  fragment — emits a checkable certificate without falling back to
  :class:`IntervalUnsupported`.
"""

import dataclasses
import math

import pytest

from repro.x86.assembler import assemble
from repro.x86.memory import Memory
from repro.x86.testcase import TestCase

from repro.kernels.aek import vector as V
from repro.kernels.libimf import LIBIMF_KERNELS
from repro.validation import ValidationConfig, Validator
from repro.verify import checker, exhaustive_check
from repro.verify.bnb import BnBConfig, BnBVerifier, seeds_from_validation
from repro.verify.certificate import Certificate

# Degree-reduced rewrites give a real, nonzero approximation error.
REDUCED_DEGREE = {"sin": 9, "cos": 8, "tan": 9, "log": 12, "exp": 8}


def _poly_pair():
    """1.1*x two ways: ``x + 0.1*x`` (two roundings) vs a single fused
    multiply — a real, nonzero ULP error on most inputs."""
    target = assemble("""
        movq $0.1d, xmm1
        mulsd xmm0, xmm1
        addsd xmm1, xmm0
    """)
    rewrite = assemble("""
        movq $1.1d, xmm1
        mulsd xmm1, xmm0
    """)
    return target, rewrite


@pytest.fixture(scope="module")
def delta_env():
    """Shared delta setup: validator counterexample + seeded verifier."""
    spec = V.delta_kernel()
    ranges = dict(spec.ranges)
    ranges.update(V.delta_mem_ranges())
    validator = Validator(spec.program, V.delta_rewrite(),
                          spec.live_outs, dict(spec.ranges),
                          spec.base_testcase)
    validation = validator.validate(ValidationConfig(
        max_proposals=10_000, seed=0))
    verifier = BnBVerifier(spec.program, V.delta_rewrite(),
                           spec.live_outs, ranges,
                           memory=Memory(V.aek_segments()),
                           concrete_gp=V.CONCRETE_GP_INDICES)
    seeds = seeds_from_validation(validation, verifier.dims)
    return spec, validation, verifier, seeds


class TestDominance:
    def test_poly_bound_dominates_exhaustive(self):
        # x*1.1 vs x + x*0.1: one rounding step apart, real ULP error.
        target, rewrite = _poly_pair()
        ranges = {"xmm0": (0.5, 2.0)}
        verifier = BnBVerifier(target, rewrite, ["xmm0"], ranges)
        result = verifier.run(BnBConfig(max_boxes=64))
        assert result.complete
        exact = exhaustive_check(target, rewrite, ["xmm0"], ranges,
                                 lambda: TestCase({}), bits_per_input=10)
        assert exact.max_ulps <= result.bound_ulps

    def test_poly_bound_dominates_validator(self):
        target, rewrite = _poly_pair()
        ranges = {"xmm0": (0.5, 2.0)}
        validator = Validator(target, rewrite, ["xmm0"], ranges,
                              lambda: TestCase({}))
        validation = validator.validate(ValidationConfig(
            max_proposals=8_000, seed=0))
        assert validation.converged
        verifier = BnBVerifier(target, rewrite, ["xmm0"], ranges)
        seeds = seeds_from_validation(validation, verifier.dims)
        result = verifier.run(BnBConfig(max_boxes=64, seeds=seeds))
        assert result.complete
        assert validation.max_err <= result.bound_ulps
        # The seed supplied a usable lower bound.
        assert result.lower_bound >= validation.max_err

    @pytest.mark.parametrize("name", ["sin", "exp"])
    def test_libimf_bound_dominates_validator(self, name):
        factory = LIBIMF_KERNELS[name]
        spec = factory()
        rewrite = factory(REDUCED_DEGREE[name]).program
        validator = Validator(spec.program, rewrite, spec.live_outs,
                              dict(spec.ranges), spec.base_testcase)
        validation = validator.validate(ValidationConfig(
            max_proposals=6_000, seed=0))
        verifier = BnBVerifier(spec.program, rewrite, spec.live_outs,
                               dict(spec.ranges))
        seeds = seeds_from_validation(validation, verifier.dims)
        result = verifier.run(BnBConfig(max_boxes=64, seeds=seeds))
        assert result.complete
        assert math.isfinite(result.bound_ulps)
        assert validation.max_err <= result.bound_ulps

    def test_delta_bound_dominates_e11_counterexample(self, delta_env):
        # E11's regression: the validator found an error the old
        # max-over-live-outs bound under-reported (ROADMAP open item).
        spec, validation, verifier, seeds = delta_env
        result = verifier.run(BnBConfig(max_boxes=128, seeds=seeds))
        assert result.complete
        assert validation.max_err <= result.bound_ulps
        assert result.seeds_covered == len(seeds)


class TestCheckerRejectsTampering:
    @pytest.fixture(scope="class")
    def certified(self):
        target, rewrite = _poly_pair()
        verifier = BnBVerifier(target, rewrite, ["xmm0"],
                               {"xmm0": (0.5, 2.0)})
        result = verifier.run(BnBConfig(max_boxes=32))
        cert = verifier.certificate(result)
        return target, rewrite, cert

    def test_genuine_certificate_accepted(self, certified):
        target, rewrite, cert = certified
        report = checker.check(cert, target, rewrite)
        assert report.ok, report.failures
        assert report.leaves_checked == len(cert.leaves)

    def test_round_trip_through_json(self, certified):
        target, rewrite, cert = certified
        assert Certificate.from_json(cert.to_json()) == cert

    def test_rejects_tampered_leaf_bound(self, certified):
        target, rewrite, cert = certified
        worst = max(range(len(cert.leaf_bounds)),
                    key=lambda i: cert.leaf_bounds[i])
        bounds = list(cert.leaf_bounds)
        bounds[worst] = 0.0
        bad = dataclasses.replace(
            cert, leaf_bounds=tuple(bounds),
            bound_ulps=max(b for b in bounds))
        report = checker.check(bad, target, rewrite)
        assert not report.ok
        assert any("below the derived bound" in f for f in report.failures)

    def test_rejects_dropped_leaf(self, certified):
        target, rewrite, cert = certified
        bad = dataclasses.replace(cert, leaves=cert.leaves[1:],
                                  leaf_bounds=cert.leaf_bounds[1:])
        report = checker.check(bad, target, rewrite)
        assert not report.ok

    def test_rejects_overlapping_leaves(self, certified):
        target, rewrite, cert = certified
        bad = dataclasses.replace(
            cert, leaves=cert.leaves + (cert.leaves[0],),
            leaf_bounds=cert.leaf_bounds + (cert.leaf_bounds[0],))
        report = checker.check(bad, target, rewrite)
        assert not report.ok
        assert any("overlap" in f or "volume" in f
                   for f in report.failures)

    def test_rejects_wrong_program(self, certified):
        _, rewrite, cert = certified
        other = assemble("addsd xmm0, xmm0\n")
        report = checker.check(cert, other, rewrite)
        assert not report.ok
        assert any("digest" in f for f in report.failures)


class TestAllKernelsCertify:
    @pytest.mark.parametrize("name", sorted(LIBIMF_KERNELS))
    def test_libimf_kernel_emits_checkable_cert(self, name, tmp_path):
        factory = LIBIMF_KERNELS[name]
        spec = factory()
        rewrite = factory(REDUCED_DEGREE[name]).program
        verifier = BnBVerifier(spec.program, rewrite, spec.live_outs,
                               dict(spec.ranges))
        result = verifier.run(BnBConfig(max_boxes=16))
        assert result.complete  # no IntervalUnsupported leaf survived
        assert math.isfinite(result.bound_ulps)
        cert = verifier.certificate(result)
        path = tmp_path / f"{name}.cert.json"
        cert.save(path)
        report = checker.check(Certificate.load(path), spec.program,
                               rewrite)
        assert report.ok, report.failures

    def test_delta_emits_checkable_cert(self, tmp_path):
        spec = V.delta_kernel()
        ranges = dict(spec.ranges)
        ranges.update(V.delta_mem_ranges())
        memory = Memory(V.aek_segments())
        verifier = BnBVerifier(spec.program, V.delta_rewrite(),
                               spec.live_outs, ranges, memory=memory,
                               concrete_gp=V.CONCRETE_GP_INDICES)
        result = verifier.run(BnBConfig(max_boxes=32))
        assert result.complete
        cert = verifier.certificate(result)
        path = tmp_path / "delta.cert.json"
        cert.save(path)
        report = checker.check(Certificate.load(path), spec.program,
                               V.delta_rewrite(), memory=memory,
                               concrete_gp=V.CONCRETE_GP_INDICES)
        assert report.ok, report.failures


class TestTermination:
    def test_budget_termination(self):
        target, rewrite = _poly_pair()
        result = BnBVerifier(target, rewrite, ["xmm0"],
                             {"xmm0": (0.5, 2.0)}).run(
            BnBConfig(max_boxes=8))
        assert result.termination == "budget"
        assert result.boxes_explored <= 8 + 2  # one batch of slack

    def test_deadline_termination(self):
        factory = LIBIMF_KERNELS["log"]
        spec = factory()
        verifier = BnBVerifier(spec.program, factory(12).program,
                               spec.live_outs, dict(spec.ranges))
        result = verifier.run(BnBConfig(max_boxes=10 ** 6, deadline=0.3))
        assert result.termination == "deadline"
        assert result.wall_time < 5.0

    def test_gap_termination_with_seed(self, delta_env):
        # Without a seed the lower bound is 0 and a relative gap can
        # never close; with the validator's counterexample it does.
        spec, validation, verifier, seeds = delta_env
        result = verifier.run(BnBConfig(max_boxes=5_000, seeds=seeds,
                                        target_gap=1_000.0))
        assert result.termination == "gap"
        assert result.gap <= 1_000.0
        assert result.lower_bound >= validation.max_err

    def test_parallel_matches_serial_soundness(self):
        target, rewrite = _poly_pair()
        ranges = {"xmm0": (0.5, 2.0)}
        verifier = BnBVerifier(target, rewrite, ["xmm0"], ranges)
        serial = verifier.run(BnBConfig(max_boxes=48, jobs=1))
        parallel = verifier.run(BnBConfig(max_boxes=48, jobs=2))
        exact = exhaustive_check(target, rewrite, ["xmm0"], ranges,
                                 lambda: TestCase({}), bits_per_input=8)
        assert exact.max_ulps <= serial.bound_ulps
        assert exact.max_ulps <= parallel.bound_ulps
