"""SMT cross-check tier (optional z3 dependency).

The z3-backed checks are skipped wholesale when z3 is not installed
(`pytest.importorskip`); the degradation tests below them always run —
without z3 the tier must answer 'unknown', never crash.
"""

import math

import pytest

from repro.x86.assembler import assemble

from repro.kernels.libimf import LIBIMF_KERNELS
from repro.verify.bnb import BnBConfig, BnBVerifier
from repro.verify.relational import smt_available, smt_cross_check
from repro.verify.relational.domain import RelationalTransfer


def _poly_pair():
    target = assemble("""
        movq $0.1d, xmm1
        mulsd xmm0, xmm1
        addsd xmm1, xmm0
    """)
    rewrite = assemble("""
        movq $1.1d, xmm1
        mulsd xmm1, xmm0
    """)
    return target, rewrite


def _poly_transfer():
    target, rewrite = _poly_pair()
    return RelationalTransfer(target, rewrite, ["xmm0"],
                              {"xmm0": (0.5, 2.0)})


class TestWithoutZ3:
    """Always runs: graceful degradation when z3 is absent."""

    def test_infinite_bound_vacuously_verified(self):
        outcome = smt_cross_check(_poly_transfer(), math.inf)
        assert outcome.verified
        assert outcome.mode == "none"

    def test_finite_bound_without_z3_is_unknown(self):
        if smt_available():
            pytest.skip("z3 installed; covered by TestWithZ3")
        outcome = smt_cross_check(_poly_transfer(), 4.0)
        assert outcome.status == "unknown"
        assert "z3" in outcome.detail

    def test_outcome_serializes(self):
        outcome = smt_cross_check(_poly_transfer(), math.inf)
        doc = outcome.to_dict()
        assert doc["status"] == "verified"
        assert set(doc) == {"status", "mode", "detail", "counterexample"}


class TestWithZ3:
    """Bit-precise and relaxation modes, cross-checked against BnB."""

    @pytest.fixture(autouse=True)
    def _need_z3(self):
        pytest.importorskip("z3")

    def test_certified_bound_confirmed(self):
        # The BnB-certified bound is sound, so the solver must not
        # find a violating input.
        target, rewrite = _poly_pair()
        verifier = BnBVerifier(target, rewrite, ["xmm0"],
                               {"xmm0": (0.5, 2.0)}, domain="relational")
        result = verifier.run(BnBConfig(max_boxes=128))
        outcome = smt_cross_check(verifier.transfer, result.bound_ulps,
                                  timeout_ms=120_000)
        assert outcome.status in ("verified", "unknown")
        if outcome.status == "verified":
            assert outcome.mode in ("fp", "real")

    def test_understated_bound_refuted(self):
        # Claiming 0 ULPs for two genuinely different roundings must
        # produce a counterexample in the bit-precise mode.
        outcome = smt_cross_check(_poly_transfer(), 0.0,
                                  timeout_ms=120_000)
        if outcome.mode == "fp":
            assert outcome.status == "refuted"
            assert outcome.counterexample

    def test_identical_programs_verified_at_zero(self):
        target, _ = _poly_pair()
        transfer = RelationalTransfer(target, target, ["xmm0"],
                                      {"xmm0": (0.5, 2.0)})
        outcome = smt_cross_check(transfer, 0.0, timeout_ms=120_000)
        assert outcome.status == "verified"

    def test_certificate_cross_check_wrapper(self):
        from repro.verify.relational import cross_check_certificate

        target, rewrite = _poly_pair()
        verifier = BnBVerifier(target, rewrite, ["xmm0"],
                               {"xmm0": (0.5, 2.0)}, domain="relational")
        result = verifier.run(BnBConfig(max_boxes=64))
        cert = verifier.certificate(result)
        outcome = cross_check_certificate(cert, target, rewrite,
                                          timeout_ms=120_000)
        assert outcome.status in ("verified", "unknown")

    @pytest.mark.parametrize("name", ["exp"])
    def test_bit_level_kernels_degrade_to_unknown(self, name):
        # exp's range reduction uses int ops outside the FP fragment;
        # the tier must answer honestly, not crash or claim falsely.
        factory = LIBIMF_KERNELS[name]
        spec = factory()
        rewrite = factory(8).program
        transfer = RelationalTransfer(spec.program, rewrite,
                                      list(spec.live_outs),
                                      dict(spec.ranges))
        outcome = smt_cross_check(transfer, 1.0, timeout_ms=30_000)
        assert outcome.status in ("unknown", "refuted")
