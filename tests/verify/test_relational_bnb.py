"""Relational-domain BnB integration: checkpoints, certificates, and
forged-document rejection.

The relational domain plugs into the batched BnB engine, so every
engine-level identity — jobs-invariance, checkpoint/resume
bit-identity, engine-portable snapshots — must hold unchanged with
``domain='relational'``; and its certificates must round-trip through
the independent checker, which re-derives each leaf in the same
domain and rejects tampered or forged documents.
"""

import dataclasses
import hashlib
import json

import pytest

from repro.x86.assembler import assemble

from repro.core.serialize import canonical_json
from repro.kernels.libimf import LIBIMF_KERNELS
from repro.verify import checker
from repro.verify.bnb import BnBCheckpoint, BnBConfig, BnBVerifier
from repro.verify.certificate import Certificate

REDUCED_DEGREE = {"sin": 9, "cos": 8, "tan": 9, "log": 12, "exp": 8}


def _poly_pair():
    target = assemble("""
        movq $0.1d, xmm1
        mulsd xmm0, xmm1
        addsd xmm1, xmm0
    """)
    rewrite = assemble("""
        movq $1.1d, xmm1
        mulsd xmm1, xmm0
    """)
    return target, rewrite


def _poly_verifier(domain="relational"):
    target, rewrite = _poly_pair()
    return BnBVerifier(target, rewrite, ["xmm0"], {"xmm0": (0.5, 2.0)},
                       domain=domain)


def _libimf_verifier(name, domain="relational"):
    factory = LIBIMF_KERNELS[name]
    spec = factory()
    rewrite = factory(REDUCED_DEGREE[name]).program
    return BnBVerifier(spec.program, rewrite, spec.live_outs,
                       dict(spec.ranges), domain=domain)


def _partition(result):
    return (result.bound_ulps, result.leaf_bounds,
            [box.bounds for box in result.leaves])


def _cert_digest(verifier, result, config):
    doc = verifier.certificate(result, config=config).to_dict()
    doc.get("stats", {})["wall_time"] = 0.0
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


class TestRelationalCheckpointResume:
    """Satellite: interrupt/resume under the relational domain is
    bit-identical to the uninterrupted run at jobs=1 and jobs=4."""

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_resume_bit_identical(self, jobs):
        verifier = _poly_verifier()
        config = BnBConfig(max_boxes=64, jobs=jobs)
        baseline = verifier.run(config)

        snapshots = []
        verifier.run(config, checkpoint_rounds=3,
                     on_checkpoint=snapshots.append)
        assert snapshots, "no checkpoints captured"
        mid = snapshots[len(snapshots) // 2]
        assert 0 < mid.rounds < baseline.rounds
        assert mid.domain == "relational"

        restored = BnBCheckpoint.from_dict(
            json.loads(json.dumps(mid.to_dict())))
        assert restored.domain == "relational"
        resumed = verifier.run(config, resume=restored)

        assert _partition(resumed) == _partition(baseline)
        assert resumed.boxes_explored == baseline.boxes_explored
        assert resumed.rounds == baseline.rounds
        assert _cert_digest(verifier, resumed, config) == \
            _cert_digest(verifier, baseline, config)

    def test_checkpoints_engine_portable(self):
        # A relational snapshot written by the batched engine resumes
        # under the reference engine to the identical partition.
        verifier = _poly_verifier()
        bat_cfg = BnBConfig(max_boxes=64, engine="batched")
        ref_cfg = BnBConfig(max_boxes=64, engine="reference")
        baseline = verifier.run(bat_cfg)
        snapshots = []
        verifier.run(bat_cfg, checkpoint_rounds=5,
                     on_checkpoint=snapshots.append)
        resumed = verifier.run(ref_cfg, resume=snapshots[0])
        assert _partition(resumed) == _partition(baseline)

    def test_domain_mismatch_rejected(self):
        # Resuming a separate-domain checkpoint in a relational search
        # (or vice versa) would mix incomparable leaf partitions.
        sep = _poly_verifier(domain="separate")
        snapshots = []
        sep.run(BnBConfig(max_boxes=64), checkpoint_rounds=3,
                on_checkpoint=snapshots.append)
        rel = _poly_verifier(domain="relational")
        with pytest.raises(ValueError, match="domain"):
            rel.run(BnBConfig(max_boxes=64), resume=snapshots[0])

    def test_legacy_checkpoint_defaults_to_separate(self):
        sep = _poly_verifier(domain="separate")
        snapshots = []
        sep.run(BnBConfig(max_boxes=64), checkpoint_rounds=3,
                on_checkpoint=snapshots.append)
        doc = snapshots[0].to_dict()
        del doc["domain"]  # a checkpoint written before the field
        restored = BnBCheckpoint.from_dict(doc)
        assert restored.domain == "separate"
        baseline = sep.run(BnBConfig(max_boxes=64))
        resumed = sep.run(BnBConfig(max_boxes=64), resume=restored)
        assert _partition(resumed) == _partition(baseline)


class TestRelationalEngineIdentity:
    @pytest.mark.parametrize("name", ["exp", "tan"])
    def test_batched_matches_reference(self, name):
        verifier = _libimf_verifier(name)
        ref = verifier.run(BnBConfig(max_boxes=48, engine="reference"))
        bat = verifier.run(BnBConfig(max_boxes=48, engine="batched"))
        assert _partition(bat) == _partition(ref)
        cfg = BnBConfig(max_boxes=48)
        assert _cert_digest(verifier, bat, cfg) == \
            _cert_digest(verifier, ref, cfg)

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_jobs_invariance(self, jobs):
        verifier = _poly_verifier()
        serial = verifier.run(BnBConfig(max_boxes=48, jobs=1))
        parallel = verifier.run(BnBConfig(max_boxes=48, jobs=jobs))
        assert _partition(parallel) == _partition(serial)

    @pytest.mark.parametrize("name", ["exp", "log"])
    def test_prefix_sharing_invisible(self, name):
        # exp/log have long literal shared prefixes, so the collapsed
        # paired-state path is actually exercised here.
        verifier = _libimf_verifier(name)
        on = verifier.run(BnBConfig(max_boxes=48, prefix_sharing=True))
        off = verifier.run(BnBConfig(max_boxes=48, prefix_sharing=False))
        assert _partition(on) == _partition(off)
        triple = lambda r: (r.stats.boxes, r.stats.concrete_bit_ops,
                            r.stats.widened_bit_ops)
        assert triple(on) == triple(off)


class TestRelationalCertificates:
    @pytest.fixture(scope="class")
    def certified(self):
        target, rewrite = _poly_pair()
        verifier = BnBVerifier(target, rewrite, ["xmm0"],
                               {"xmm0": (0.5, 2.0)}, domain="relational")
        result = verifier.run(BnBConfig(max_boxes=32))
        cert = verifier.certificate(result)
        return target, rewrite, cert

    def test_domain_recorded_and_round_trips(self, certified):
        _, _, cert = certified
        assert cert.domain == "relational"
        assert Certificate.from_json(cert.to_json()) == cert

    def test_checker_revalidates_relationally(self, certified):
        target, rewrite, cert = certified
        report = checker.check(cert, target, rewrite)
        assert report.ok, report.failures
        assert report.leaves_checked == len(cert.leaves)

    @pytest.mark.parametrize("name", sorted(REDUCED_DEGREE))
    def test_every_libimf_relational_cert_checks(self, name):
        verifier = _libimf_verifier(name)
        result = verifier.run(BnBConfig(max_boxes=16))
        cert = verifier.certificate(result)
        assert cert.domain == "relational"
        spec = LIBIMF_KERNELS[name]()
        rewrite = LIBIMF_KERNELS[name](REDUCED_DEGREE[name]).program
        report = checker.check(cert, spec.program, rewrite)
        assert report.ok, report.failures

    def test_separate_checker_rejects_relational_claim(self):
        # On exp the relational bound is genuinely below what
        # independent hulls can justify: relabeling the certificate
        # 'separate' must make the checker reject the (now
        # unjustified) leaves.
        verifier = _libimf_verifier("exp")
        result = verifier.run(BnBConfig(max_boxes=32))
        cert = verifier.certificate(result)
        spec = LIBIMF_KERNELS["exp"]()
        rewrite = LIBIMF_KERNELS["exp"](REDUCED_DEGREE["exp"]).program
        sep = _libimf_verifier("exp", domain="separate").run(
            BnBConfig(max_boxes=32))
        assert cert.bound_ulps < sep.bound_ulps
        relabeled = dataclasses.replace(cert, domain="separate")
        report = checker.check(relabeled, spec.program, rewrite)
        assert not report.ok
        assert any("below the derived bound" in f
                   for f in report.failures)

    def test_rejects_tampered_leaf_bound(self, certified):
        target, rewrite, cert = certified
        worst = max(range(len(cert.leaf_bounds)),
                    key=lambda i: cert.leaf_bounds[i])
        bounds = list(cert.leaf_bounds)
        bounds[worst] = 0.0
        bad = dataclasses.replace(cert, leaf_bounds=tuple(bounds),
                                  bound_ulps=max(bounds))
        report = checker.check(bad, target, rewrite)
        assert not report.ok
        assert any("below the derived bound" in f
                   for f in report.failures)

    def test_rejects_dropped_leaf(self, certified):
        target, rewrite, cert = certified
        bad = dataclasses.replace(cert, leaves=cert.leaves[1:],
                                  leaf_bounds=cert.leaf_bounds[1:])
        report = checker.check(bad, target, rewrite)
        assert not report.ok


class TestForgedDocuments:
    """Satellite: unknown domain/version parse to a clear error, never
    a raw ``KeyError`` — the CLI maps it to 'malformed' + exit 2."""

    @pytest.fixture()
    def cert_doc(self):
        verifier = _poly_verifier()
        result = verifier.run(BnBConfig(max_boxes=16))
        return verifier.certificate(result).to_dict()

    def test_unknown_domain_rejected_at_parse(self, cert_doc):
        cert_doc["domain"] = "entangled"
        with pytest.raises(ValueError, match="unknown certificate "
                                             "domain 'entangled'"):
            Certificate.from_dict(cert_doc)

    def test_unknown_version_rejected_at_parse(self, cert_doc):
        cert_doc["version"] = 999
        with pytest.raises(ValueError,
                           match="unsupported certificate version"):
            Certificate.from_dict(cert_doc)

    def test_missing_domain_defaults_to_separate(self, cert_doc):
        # Pre-relational certificates have no domain field at all.
        del cert_doc["domain"]
        cert = Certificate.from_dict(cert_doc)
        assert cert.domain == "separate"

    @pytest.mark.parametrize("forge",
                             [{"domain": "entangled"}, {"version": 7}])
    def test_cli_exits_2_on_forged_certificate(self, forge, tmp_path,
                                               capsys):
        from repro.cli import main

        verifier = _poly_verifier()
        result = verifier.run(BnBConfig(max_boxes=16))
        doc = verifier.certificate(result).to_dict()
        doc.update(forge)
        path = tmp_path / "forged.cert.json"
        path.write_text(json.dumps(doc))
        target, rewrite = _poly_pair()
        t_path = tmp_path / "t.s"
        r_path = tmp_path / "r.s"
        t_path.write_text(target.to_text())
        r_path.write_text(rewrite.to_text())
        code = main(["verify", str(t_path), str(r_path),
                     "--live-out", "xmm0", "--range", "xmm0=0.5:2.0",
                     "--check-cert", str(path)])
        assert code == 2
        assert "malformed" in capsys.readouterr().out
