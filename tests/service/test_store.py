"""Ledger semantics: dedupe, claiming, retry, cascade, recovery,
content-addressed artifacts, checkpoint files."""

import os

import pytest

from repro.service.jobs import JobSpec
from repro.service.store import Ledger


@pytest.fixture
def ledger(tmp_path):
    with Ledger(str(tmp_path / "store")) as led:
        yield led


def _job(n=0, kind="search", deps=()):
    return JobSpec(kind, {"n": n}, deps=tuple(deps), role=f"job[{n}]")


class TestJobs:
    def test_add_and_fetch(self, ledger):
        spec = _job(1)
        assert ledger.add_job(spec)
        row = ledger.job(spec.digest)
        assert row["state"] == "pending"
        assert row["kind"] == "search"
        assert row["attempts"] == 0

    def test_dedupe_on_digest(self, ledger):
        spec = _job(1)
        assert ledger.add_job(spec)
        assert not ledger.add_job(spec)
        assert len(ledger.jobs()) == 1

    def test_same_payload_different_kind_is_different_job(self, ledger):
        assert ledger.add_job(JobSpec("search", {"n": 1}))
        assert ledger.add_job(JobSpec("select", {"n": 1}))
        assert len(ledger.jobs()) == 2

    def test_claim_respects_dependencies(self, ledger):
        up = _job(1)
        down = _job(2, kind="select", deps=[up.digest])
        ledger.add_job(up)
        ledger.add_job(down)
        claimed = ledger.claim_ready(10)
        assert [j["digest"] for j in claimed] == [up.digest]
        # Upstream not done yet: downstream stays unclaimable.
        assert ledger.claim_ready(10) == []
        ledger.finish(up.digest)
        claimed = ledger.claim_ready(10)
        assert [j["digest"] for j in claimed] == [down.digest]

    def test_claim_increments_attempts_and_records(self, ledger):
        spec = _job(1)
        ledger.add_job(spec)
        job = ledger.claim_ready(1)[0]
        assert job["attempts"] == 1
        attempts = ledger.attempts_of(spec.digest)
        assert len(attempts) == 1
        assert attempts[0]["finished_at"] is None

    def test_finish_closes_attempt(self, ledger):
        spec = _job(1)
        ledger.add_job(spec)
        ledger.claim_ready(1)
        ledger.finish(spec.digest)
        assert ledger.job(spec.digest)["state"] == "done"
        attempt = ledger.attempts_of(spec.digest)[0]
        assert attempt["outcome"] == "ok"
        assert attempt["finished_at"] is not None

    def test_fail_with_retry_backs_off(self, ledger):
        spec = _job(1)
        ledger.add_job(spec, max_attempts=3)
        ledger.claim_ready(1)
        state = ledger.fail(spec.digest, "boom", retry_in=3600.0)
        assert state == "pending"
        row = ledger.job(spec.digest)
        assert row["error"] == "boom"
        # Backoff: not claimable now, claimable after not_before.
        assert ledger.claim_ready(1) == []
        assert ledger.claim_ready(1, now=row["not_before"] + 1) != []

    def test_fail_exhausts_attempts(self, ledger):
        spec = _job(1)
        ledger.add_job(spec, max_attempts=2)
        for expected in ("pending", "failed"):
            ledger.claim_ready(1, now=ledger.job(spec.digest)["not_before"]
                               + 1)
            assert ledger.fail(spec.digest, "boom", retry_in=0.0) == expected

    def test_failure_cascades_to_dependents(self, ledger):
        up = _job(1)
        mid = _job(2, kind="select", deps=[up.digest])
        down = _job(3, kind="verify", deps=[mid.digest])
        for spec in (up, mid, down):
            ledger.add_job(spec, max_attempts=1)
        ledger.claim_ready(1)
        ledger.fail(up.digest, "boom", retry_in=None)
        assert ledger.job(mid.digest)["state"] == "failed"
        assert ledger.job(down.digest)["state"] == "failed"
        assert "upstream failed" in ledger.job(down.digest)["error"]

    def test_recover_releases_running_jobs(self, ledger):
        spec = _job(1)
        ledger.add_job(spec)
        ledger.claim_ready(1)
        assert ledger.job(spec.digest)["state"] == "running"
        assert ledger.recover() == 1
        row = ledger.job(spec.digest)
        assert row["state"] == "pending"
        # The interrupted attempt is refunded: it doesn't count toward
        # max_attempts, so a crash loop can't exhaust the retry budget.
        assert row["attempts"] == 0
        assert ledger.attempts_of(spec.digest)[0]["outcome"] == \
            "interrupted"

    def test_counts(self, ledger):
        a, b = _job(1), _job(2)
        ledger.add_job(a)
        ledger.add_job(b)
        ledger.claim_ready(1)
        ledger.finish(a.digest)
        counts = ledger.counts()
        assert counts["done"] == 1 and counts["pending"] == 1


class TestArtifacts:
    def test_content_addressing(self, ledger):
        d1 = ledger.put_artifact(b"hello", kind="test")
        d2 = ledger.put_artifact(b"hello", kind="test")
        assert d1 == d2
        assert ledger.get_artifact(d1) == b"hello"

    def test_corruption_detected(self, ledger):
        digest = ledger.put_artifact(b"payload")
        path = ledger._artifact_path(digest)
        with open(path, "wb") as fh:
            fh.write(b"tampered")
        with pytest.raises(IOError, match="corrupt"):
            ledger.get_artifact(digest)

    def test_linking(self, ledger):
        spec = _job(1)
        ledger.add_job(spec)
        digest = ledger.put_artifact(b'{"x": 1}')
        ledger.link_artifact(spec.digest, "result.json", digest)
        assert ledger.artifacts_of(spec.digest) == {"result.json": digest}
        assert ledger.result_doc(spec.digest) == {"x": 1}


class TestCheckpoints:
    def test_roundtrip_and_clear(self, ledger):
        ledger.write_checkpoint("abc", {"iteration": 5})
        assert ledger.read_checkpoint("abc") == {"iteration": 5}
        ledger.clear_checkpoint("abc")
        assert ledger.read_checkpoint("abc") is None
        ledger.clear_checkpoint("abc")  # idempotent

    def test_garbage_checkpoint_ignored(self, ledger):
        with open(ledger.checkpoint_path("abc"), "w") as fh:
            fh.write("{not json")
        assert ledger.read_checkpoint("abc") is None

    def test_no_tmp_files_leak(self, ledger):
        ledger.write_checkpoint("abc", {"i": 1})
        ledger.write_checkpoint("abc", {"i": 2})
        names = os.listdir(os.path.join(ledger.root, "checkpoints"))
        assert names == ["abc.json"]


class TestCampaigns:
    def test_campaign_linkage(self, ledger):
        spec = _job(1)
        ledger.add_job(spec)
        assert ledger.add_campaign("c1", "test", {"a": 1})
        assert not ledger.add_campaign("c1", "test", {"a": 1})
        ledger.link_campaign("c1", spec.digest, role="cell/search[0]")
        assert ledger.campaign_roles("c1") == \
            [(spec.digest, "cell/search[0]")]
        assert ledger.counts(campaign="c1")["pending"] == 1

    def test_campaign_jobs_carries_role_and_order(self, ledger):
        specs = [_job(1), _job(2, kind="select")]
        ledger.add_campaign("c1", "test", {})
        for i, spec in enumerate(specs):
            ledger.add_job(spec)
            ledger.link_campaign("c1", spec.digest,
                                 role=f"cell/stage[{i}]")
        rows = ledger.campaign_jobs("c1")
        assert [r["role"] for r in rows] == \
            ["cell/stage[0]", "cell/stage[1]"]
        # The campaign role wins over the job's own role column, and
        # the full job row rides along (state, kind, payload).
        assert [r["kind"] for r in rows] == ["search", "select"]
        assert all(r["state"] == "pending" for r in rows)

    def test_schema_version_guard(self, tmp_path):
        root = str(tmp_path / "store")
        with Ledger(root) as led:
            with led._tx() as conn:
                conn.execute("UPDATE meta SET value='999' "
                             "WHERE key='schema_version'")
        with pytest.raises(RuntimeError, match="schema version"):
            Ledger(root)


class TestPrefixResolution:
    def test_resolves_by_range_scan(self, ledger):
        specs = [_job(n) for n in range(6)]
        for spec in specs:
            ledger.add_job(spec)
        for spec in specs:
            assert ledger.resolve_prefix(spec.digest[:10]) == \
                [spec.digest]

    def test_ambiguous_prefix_returns_all_matches(self, ledger):
        a, b = _job(1), _job(2)
        ledger.add_job(a)
        ledger.add_job(b)
        shared = ""
        for x, y in zip(a.digest, b.digest):
            if x != y:
                break
            shared += x
        matches = ledger.resolve_prefix(shared)
        assert sorted(matches) == sorted([a.digest, b.digest])

    def test_no_match_is_empty(self, ledger):
        ledger.add_job(_job(1))
        assert ledger.resolve_prefix("f" * 64) == []

    def test_limit_caps_the_listing(self, ledger):
        for n in range(6):
            ledger.add_job(_job(n))
        assert len(ledger.resolve_prefix("", limit=3)) == 3


class TestMeta:
    def test_round_trip_and_overwrite(self, ledger):
        assert ledger.get_meta("catalog:latest") is None
        ledger.set_meta("catalog:latest", "aa")
        assert ledger.get_meta("catalog:latest") == "aa"
        ledger.set_meta("catalog:latest", "bb")
        assert ledger.get_meta("catalog:latest") == "bb"

    def test_schema_version_is_off_limits(self, ledger):
        with pytest.raises(ValueError, match="schema_version"):
            ledger.set_meta("schema_version", "999")


class TestTelemetry:
    def test_roundtrip(self, ledger):
        ledger.record_telemetry("abc", "attempt", {"elapsed": 1.5})
        rows = ledger.telemetry_of("abc")
        assert len(rows) == 1
        assert rows[0]["kind"] == "attempt"
        assert rows[0]["data"] == {"elapsed": 1.5}


class TestMonotonicBackoff:
    """Retry backoff decisions ride the monotonic clock; the epoch
    ``not_before`` column is display/ledger data and the cross-restart
    fallback only."""

    def test_backoff_immune_to_wall_clock_step(self, ledger):
        spec = _job(1)
        ledger.add_job(spec, max_attempts=3)
        ledger.claim_ready(1)
        assert ledger.fail(spec.digest, "boom", retry_in=0.0) == "pending"
        # Simulate a forward wall-clock step during the backoff: the
        # epoch stamp now claims the retry is an hour away.  The
        # monotonic deadline (already passed) must win.
        with ledger._tx() as conn:
            import time
            conn.execute("UPDATE jobs SET not_before=? WHERE digest=?",
                         (time.time() + 3600.0, spec.digest))
        claimed = ledger.claim_ready(1)
        assert [j["digest"] for j in claimed] == [spec.digest]

    def test_backoff_holds_even_if_wall_clock_steps_back(self, ledger):
        spec = _job(1)
        ledger.add_job(spec, max_attempts=3)
        ledger.claim_ready(1)
        ledger.fail(spec.digest, "boom", retry_in=3600.0)
        # A backward wall-clock step cannot fire the retry early: zero
        # out the epoch stamp; the monotonic deadline still gates.
        with ledger._tx() as conn:
            conn.execute("UPDATE jobs SET not_before=0 WHERE digest=?",
                         (spec.digest,))
        assert ledger.claim_ready(1) == []

    def test_restart_falls_back_to_epoch_stamp(self, ledger):
        spec = _job(1)
        ledger.add_job(spec, max_attempts=3)
        ledger.claim_ready(1)
        ledger.fail(spec.digest, "boom", retry_in=3600.0)
        # A restarted scheduler has no monotonic deadlines; the epoch
        # stamp (the best surviving information) gates the claim.
        ledger._backoff.clear()
        assert ledger.claim_ready(1) == []
        row = ledger.job(spec.digest)
        assert ledger.claim_ready(1, now=row["not_before"] + 1) != []

    def test_explicit_now_is_pure_epoch_mode(self, ledger):
        spec = _job(1)
        ledger.add_job(spec, max_attempts=3)
        ledger.claim_ready(1)
        ledger.fail(spec.digest, "boom", retry_in=3600.0)
        row = ledger.job(spec.digest)
        # Simulated time bypasses the monotonic gate entirely (the
        # scheduler tests drive claim_ready with synthetic clocks).
        assert ledger.claim_ready(1, now=row["not_before"] + 1) != []
