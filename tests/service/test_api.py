"""HTTP front end: REST round trips, content-digest dedupe over the
wire, the agent lease RPCs with owner guards, checkpoint sync, and the
SSE progress feed.  No real job execution — jobs are completed through
the same RPCs a fleet agent uses."""

import json
import threading
import time

import pytest

from repro.service.agent import RemoteSource
from repro.service.api import ApiServer, ServiceClient, ServiceError
from repro.service.campaign import CampaignSpec
from repro.service.jobs import JobSpec
from repro.service.store import Ledger


@pytest.fixture
def service(tmp_path):
    root = str(tmp_path / "store")
    with ApiServer(root) as server:
        yield server, ServiceClient(server.url), root


def _value(doc=None, files=None):
    return {"doc": doc or {"answer": 42}, "files": files or {},
            "telemetry": {"elapsed_seconds": 0.5}}


class TestRest:
    def test_health(self, service):
        _server, client, _root = service
        assert client.health()["ok"] is True

    def test_submit_job_dedupes(self, service):
        _server, client, _root = service
        first = client.submit_job("search", {"n": 1})
        again = client.submit_job("search", {"n": 1})
        assert first["created"] is True
        assert again["created"] is False
        assert first["digest"] == again["digest"]

    def test_submit_rejects_unknown_kind(self, service):
        _server, client, _root = service
        with pytest.raises(ServiceError) as err:
            client.submit_job("frobnicate", {"n": 1})
        assert err.value.status == 400

    def test_campaign_round_trip(self, service):
        _server, client, _root = service
        spec = CampaignSpec(kernels=(("sin", 0.0),), chains=2,
                            proposals=100, testcases=4,
                            stages=("search", "select"))
        out = client.submit_campaign(spec, name="t")
        assert out["new"] == 3 and out["reused"] == 0
        # Duplicate submission over the wire is a cheap 200.
        again = client.submit_campaign(spec, name="t")
        assert again["new"] == 0 and again["reused"] == 3
        detail = client.campaign(out["campaign"])
        assert detail["counts"]["pending"] == 3
        assert len(detail["jobs"]) == 3
        totals = client.status()["totals"]
        assert totals["pending"] == 3

    def test_job_status_and_prefix_resolution(self, service):
        _server, client, _root = service
        digest = client.submit_job("search", {"n": 1})["digest"]
        doc = client.job(digest[:12])
        assert doc["digest"] == digest
        assert doc["state"] == "pending"
        assert doc["payload"] == {"n": 1}

    def test_unknown_job_is_404(self, service):
        _server, client, _root = service
        with pytest.raises(ServiceError) as err:
            client.job("deadbeef" * 8)
        assert err.value.status == 404

    def test_unknown_endpoint_is_404(self, service):
        _server, client, _root = service
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/v1/nonsense")
        assert err.value.status == 404

    def test_artifact_bytes_round_trip(self, service):
        _server, client, _root = service
        digest = client.submit_job("search", {"n": 1})["digest"]
        job = client.claim("w1", 1, 30.0)[0]
        client.finish(job["digest"], "w1",
                      _value(files={"rewrite.s": "addss %xmm0\n"}), 1.0)
        doc = json.loads(client.artifact(digest, "result.json"))
        assert doc == {"answer": 42}
        text = client.artifact(digest, "rewrite.s")
        assert text == b"addss %xmm0\n"
        with pytest.raises(ServiceError) as err:
            client.artifact(digest, "missing.txt")
        assert err.value.status == 404


class TestAgentRpc:
    def test_lease_heartbeat_finish(self, service):
        _server, client, _root = service
        digest = client.submit_job("search", {"n": 1})["digest"]
        jobs = client.claim("w1", 4, 30.0)
        assert [j["digest"] for j in jobs] == [digest]
        assert jobs[0]["deps"] == {}
        assert jobs[0]["checkpoint"] is None
        assert client.heartbeat("w1", [digest], 30.0) == [digest]
        assert client.heartbeat("w2", [digest], 30.0) == []
        assert client.finish(digest, "w1", _value(), 1.0) is True
        assert client.job(digest)["state"] == "done"

    def test_finish_owner_guard(self, service):
        _server, client, _root = service
        digest = client.submit_job("search", {"n": 1})["digest"]
        client.claim("w1", 1, 30.0)
        assert client.finish(digest, "intruder", _value(), 1.0) is False
        assert client.job(digest)["state"] == "running"

    def test_fail_retries_then_exhausts(self, service):
        _server, client, _root = service
        digest = client.submit_job("search", {"n": 1},
                                   max_attempts=2)["digest"]
        client.claim("w1", 1, 30.0)
        info = client.fail(digest, "w1", "boom", retry_base=0.01)
        assert info["state"] == "pending"
        assert info["attempts"] == 1
        assert info["retry_in"] == pytest.approx(0.01)
        time.sleep(0.05)
        client.claim("w1", 1, 30.0)
        info = client.fail(digest, "w1", "boom again", retry_base=0.01)
        assert info["state"] == "failed"

    def test_release_hands_back(self, service):
        _server, client, _root = service
        digest = client.submit_job("search", {"n": 1})["digest"]
        client.claim("w1", 1, 30.0)
        assert client.release(digest, "w1", note="drain") is True
        doc = client.job(digest)
        assert doc["state"] == "pending"
        assert doc["attempts"] == 0  # refunded

    def test_dep_docs_ride_the_claim(self, service):
        _server, client, _root = service
        dep = client.submit_job("search", {"n": 1})["digest"]
        job = JobSpec("select", {"n": 2}, deps=(dep,))
        client.submit_job("select", {"n": 2}, deps=[dep])
        client.claim("w1", 1, 30.0)
        client.finish(dep, "w1", _value(doc={"x": 7}), 1.0)
        jobs = client.claim("w1", 1, 30.0)
        assert jobs[0]["digest"] == job.digest
        assert jobs[0]["deps"] == {dep: {"x": 7}}

    def test_checkpoint_owner_guard(self, service):
        _server, client, _root = service
        digest = client.submit_job("search", {"n": 1})["digest"]
        client.claim("w1", 1, 30.0)
        assert client.put_checkpoint(digest, "w1",
                                     {"job_kind": "search",
                                      "state": {"i": 5}}) is True
        assert client.put_checkpoint(digest, "intruder",
                                     {"job_kind": "search",
                                      "state": {"i": 9}}) is False
        assert client.get_checkpoint(digest)["state"] == {"i": 5}

    def test_events_stream(self, service):
        server, client, _root = service
        seen = []
        ready = threading.Event()

        def listen():
            for event in client.events():
                seen.append(event)
                ready.set()

        thread = threading.Thread(target=listen, daemon=True)
        thread.start()
        time.sleep(0.2)  # let the subscription attach
        client.submit_job("search", {"n": 1})
        assert ready.wait(timeout=5.0)
        assert seen[0]["event"] == "submitted"


class TestRemoteSource:
    def test_claim_execute_finish(self, service, tmp_path):
        _server, client, _root = service
        digest = client.submit_job("search", {"n": 1})["digest"]
        source = RemoteSource(client, str(tmp_path / "scratch"))
        jobs = source.claim("w1", 1, 30.0)
        assert jobs[0]["digest"] == digest
        assert source.dependency_docs(digest) == ("ok", "", {})
        assert source.heartbeat("w1", [digest], 30.0) == {digest}
        assert source.succeed(digest, _value(), 1.0, "w1") is True
        assert client.job(digest)["state"] == "done"

    def test_checkpoints_sync_both_ways(self, service, tmp_path):
        _server, client, root = service
        digest = client.submit_job("search", {"n": 1})["digest"]
        # The server already holds a checkpoint for this job (uploaded
        # by a previous owner before it died).
        with Ledger(root) as ledger:
            ledger.write_checkpoint(digest, {"job_kind": "search",
                                             "state": {"i": 100}})
        scratch = str(tmp_path / "scratch")
        source = RemoteSource(client, scratch)
        source.claim("w1", 1, 30.0)
        # Download on claim: the worker will resume from iteration 100.
        local = source._checkpoint_path(digest)
        assert json.load(open(local))["state"] == {"i": 100}
        # The worker makes progress; the next heartbeat uploads it.
        with open(local, "w") as fh:
            json.dump({"job_kind": "search", "state": {"i": 200}}, fh)
        source.heartbeat("w1", [digest], 30.0)
        assert client.get_checkpoint(digest)["state"] == {"i": 200}

    def test_lost_lease_reported(self, service, tmp_path):
        _server, client, root = service
        digest = client.submit_job("search", {"n": 1})["digest"]
        source = RemoteSource(client, str(tmp_path / "scratch"))
        source.claim("w1", 1, 0.0)  # born expired
        with Ledger(root) as ledger:
            assert ledger.reap_expired() == [digest]
        client.claim("w2", 1, 30.0)
        assert source.heartbeat("w1", [digest], 30.0) == set()


class TestCatalogApi:
    def _seed(self, root):
        from repro.catalog import build_catalog, store_catalog
        from tests.catalog.conftest import plant_campaign

        with Ledger(root) as ledger:
            cid = plant_campaign(ledger)
            digest = store_catalog(ledger, build_catalog(ledger, cid),
                                   campaign=cid)
        return cid, digest

    def test_no_catalog_is_404_with_guidance(self, service):
        _server, client, _root = service
        with pytest.raises(ServiceError) as err:
            client.catalog()
        assert err.value.status == 404
        assert "repro catalog build" in str(err.value)

    def test_summary_query_and_full_document(self, service):
        _server, client, root = service
        _cid, digest = self._seed(root)
        out = client.catalog()
        assert out["digest"] == digest
        assert out["summary"]["kernels"]["dot"]["frontier"] == 2

        entries = client.catalog(kernel="dot", max_error=0.0,
                                 frontier=True)["entries"]
        assert [e["id"] for e in entries] == ["dot/eta=0"]

        from repro.catalog import catalog_digest, unwrap_catalog
        body, _measurements = unwrap_catalog(
            client.catalog(full=True)["document"])
        assert catalog_digest(body) == digest
        assert body["kernels"]["dot"]["target_latency"] == 100

    def test_unknown_kernel_is_404(self, service):
        _server, client, root = service
        self._seed(root)
        with pytest.raises(ServiceError) as err:
            client.catalog(kernel="cos")
        assert err.value.status == 404

    def test_select_under_budget(self, service):
        _server, client, root = service
        self._seed(root)
        out = client.catalog_select(4.0, workload="dot:2")
        assert out["assignment"]["dot"]["id"] == "dot/eta=10"
        assert out["latency"] == 100
        # Zero budget still resolves (the proved rewrite has error 0).
        out = client.catalog_select(0.0, workload="dot:2")
        assert out["assignment"]["dot"]["id"] == "dot/eta=0"

    def test_select_requires_budget(self, service):
        _server, client, root = service
        self._seed(root)
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/v1/catalog/select?workload=dot")
        assert err.value.status == 400

    def test_select_bad_workload_is_409(self, service):
        _server, client, root = service
        self._seed(root)
        with pytest.raises(ServiceError) as err:
            client.catalog_select(1.0, workload="cos:2")
        assert err.value.status == 409

    def test_build_over_the_wire(self, service):
        from tests.catalog.conftest import plant_campaign

        _server, client, root = service
        with Ledger(root) as ledger:
            cid = plant_campaign(ledger)
        out = client.catalog_build(cid)
        assert out["summary"]["kernels"]["dot"]["entries"] == 3
        assert client.catalog()["digest"] == out["digest"]

    def test_build_unknown_campaign_is_409(self, service):
        _server, client, _root = service
        with pytest.raises(ServiceError) as err:
            client.catalog_build("ghost")
        assert err.value.status == 409

    def test_cache_hits_on_repeat_reads(self, service):
        server, client, root = service
        self._seed(root)
        client.catalog()
        client.catalog()
        client.catalog()
        assert server.catalog_cache.hits >= 2
        assert server.catalog_cache.misses == 1

    def test_cache_is_bypassed_by_new_builds(self, service):
        from tests.catalog.conftest import plant_campaign, select_doc, uf_doc

        server, client, root = service
        self._seed(root)
        first = client.catalog()["digest"]
        with Ledger(root) as ledger:
            other = plant_campaign(
                ledger, cid="cat-2",
                cells=[("add", 0.0,
                        select_doc("a0", 30, target_latency=60),
                        uf_doc("a0"))])
        second = client.catalog_build(other)["digest"]
        assert second != first
        # catalog:latest moved; the cache keys on content digest, so
        # the stale entry can never be served for the new head.
        assert client.catalog()["digest"] == second

    def test_ambiguous_job_prefix_is_409_with_matches(self, service):
        _server, client, root = service
        with Ledger(root) as ledger:
            for suffix in ("aa", "bb"):
                ledger._conn.execute(
                    "INSERT INTO jobs (digest, kind, payload, state,"
                    " role, max_attempts, created_at, updated_at)"
                    " VALUES (?, 'search', '{}', 'pending', '', 3, 0, 0)",
                    ("abcdef" + suffix + "0" * 56,))
            ledger._conn.commit()
        with pytest.raises(ServiceError) as err:
            client.job("abcdef")
        assert err.value.status == 409
        assert "abcdefaa" in str(err.value)
        assert "abcdefbb" in str(err.value)
