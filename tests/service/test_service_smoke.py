"""End-to-end crash recovery: SIGKILL the scheduler mid-run, restart,
and require (a) finished jobs are not re-run, (b) the interrupted job
resumes from its checkpoint, and (c) every artifact is bit-identical to
an uninterrupted run of the same campaign.

This is the invariant the whole service is built around, so it runs as
a real subprocess test: the serve process is killed with SIGKILL (no
cleanup handlers), exactly like a machine crash.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import Ledger, Scheduler, submit_campaign
from repro.service.campaign import CampaignSpec

CHECKPOINT_EVERY = 100


def _spec():
    # A 2-eta sweep, small enough to finish in seconds but big enough
    # that the searches emit several checkpoints before completing.
    # eta=0 verifies via UF equivalence; eta=1e5 via branch-and-bound,
    # which also exercises the certificate artifact.
    return CampaignSpec(kernels=(("dot", 0.0), ("dot", 1.0e5)), chains=2,
                        proposals=2_400, testcases=8, seed=0,
                        validate_proposals=300, verify_budget=64)


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                       "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


def _serve(store, extra=()):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", store,
         "--jobs", "1", "--checkpoint-every", str(CHECKPOINT_EVERY),
         "--quiet", *extra],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def _wait_for_checkpoint(store, distinct=1, timeout=90.0):
    """Block until checkpoint files for ``distinct`` different jobs have
    been observed.  Checkpoints are named ``<job digest>.json`` and are
    deleted when their job finishes, so seeing a second digest proves
    the first job ran to completion — without touching the ledger while
    the serve process owns it."""
    checkpoints = os.path.join(store, "checkpoints")
    seen = set()
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.isdir(checkpoints):
            seen.update(name for name in os.listdir(checkpoints)
                        if name.endswith(".json"))
        if len(seen) >= distinct:
            return
        time.sleep(0.05)
    pytest.fail(f"saw {len(seen)} checkpointed job(s), wanted "
                f"{distinct}, before the deadline")


@pytest.mark.slow
def test_kill_and_restart_resumes_bit_identical(tmp_path):
    spec = _spec()

    # Reference: the same campaign served start-to-finish, in-process.
    ref_root = str(tmp_path / "reference")
    with Ledger(ref_root) as ledger:
        cid, _ = submit_campaign(ledger, spec, name="smoke")
        Scheduler(ledger, jobs=1,
                  checkpoint_every=CHECKPOINT_EVERY).run()
        assert ledger.counts()["failed"] == 0
        reference = {
            digest: ledger.artifacts_of(digest)
            for digest, _role in ledger.campaign_roles(cid)
        }

    # Crash run: submit via the CLI, serve in a subprocess, SIGKILL it
    # once the first search has checkpointed.
    root = str(tmp_path / "crashed")
    submit = subprocess.run(
        [sys.executable, "-m", "repro", "submit", "--store", root,
         "--kernel", "dot", "--etas", "0,1e5", "--chains", "2",
         "--proposals", "2400", "--testcases", "8", "--seed", "0",
         "--validate-proposals", "300", "--verify-budget", "64",
         "--name", "smoke"],
        env=_env(), capture_output=True, text=True)
    assert submit.returncode == 0, submit.stderr

    serve = _serve(root)
    try:
        # Two distinct checkpointed jobs = the first search finished
        # and the second is mid-flight: the kill interrupts real work
        # while completed work already sits in the ledger.
        _wait_for_checkpoint(root, distinct=2)
    finally:
        serve.kill()
        serve.wait()

    with Ledger(root) as ledger:
        states = {row["digest"]: row["state"] for row in ledger.jobs()}
        done_before_kill = {d for d, s in states.items() if s == "done"}
        assert done_before_kill
        # SIGKILL gave the scheduler no chance to release its claim.
        assert "running" in states.values()

    # Restart: recovery must release the orphaned claim and finish
    # everything without re-running completed jobs.
    second = _serve(root)
    stdout, stderr = second.communicate(timeout=300)
    assert second.returncode == 0, stderr.decode()

    with Ledger(root) as ledger:
        counts = ledger.counts()
        assert counts["done"] == len(states) and counts["failed"] == 0

        for digest in done_before_kill:
            attempts = ledger.attempts_of(digest)
            assert len(attempts) == 1, \
                f"finished job {digest[:12]} was re-run"

        # At least one job resumed from a checkpoint rather than
        # starting over.
        resumed_at = [
            row["data"]["resumed_at"]
            for digest in states
            for row in ledger.telemetry_of(digest)
            if row["kind"] == "attempt" and "resumed_at" in row["data"]
        ]
        assert any(offset >= CHECKPOINT_EVERY for offset in resumed_at)

        # Checkpoints are cleaned up once their jobs complete.
        assert os.listdir(os.path.join(root, "checkpoints")) == []

        # The payoff: every artifact of every job matches the
        # uninterrupted run byte for byte (artifact digests are
        # sha256 of content, so digest equality is byte equality).
        cid = ledger.campaigns()[0]["id"]
        crashed = {digest: ledger.artifacts_of(digest)
                   for digest, _role in ledger.campaign_roles(cid)}
        # The eta=1e5 cell's verifier emitted its certificate.
        assert any("certificate.json" in named
                   for named in crashed.values())
    assert crashed == reference


@pytest.mark.slow
def test_graceful_sigterm_releases_claims(tmp_path):
    root = str(tmp_path / "store")
    with Ledger(root) as ledger:
        submit_campaign(ledger, _spec(), name="smoke")

    serve = _serve(root)
    try:
        _wait_for_checkpoint(root)
        serve.send_signal(signal.SIGTERM)
        serve.wait(timeout=120)
    finally:
        if serve.poll() is None:
            serve.kill()
            serve.wait()

    with Ledger(root) as ledger:
        states = [row["state"] for row in ledger.jobs()]
        # A graceful drain leaves no orphaned claims behind; the
        # in-flight job goes back to pending with its checkpoint kept.
        assert "running" not in states
        assert "pending" in states

    # And the drained store finishes cleanly on the next serve.
    second = _serve(root)
    _stdout, stderr = second.communicate(timeout=300)
    assert second.returncode == 0, stderr.decode()
    with Ledger(root) as ledger:
        assert ledger.counts()["failed"] == 0
        assert ledger.counts()["pending"] == 0
