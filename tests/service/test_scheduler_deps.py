"""Scheduler dispatch-path fixes: dependency-document triage (retry a
transiently unreadable dep, fail only when the dep itself failed) and
retry events that carry the ledger's post-fail attempt count."""

import json
from typing import Dict, List, Optional

import pytest

from repro.core.parallel import TaskOutcome

from repro.service.jobs import JobSpec
from repro.service.queue import JobQueue
from repro.service.scheduler import LocalSource, Scheduler
from repro.service.store import Ledger


@pytest.fixture
def ledger(tmp_path):
    with Ledger(str(tmp_path / "store")) as led:
        yield led


def _finish_with_doc(ledger, digest, doc):
    art = ledger.put_artifact(json.dumps(doc).encode("utf-8"),
                              kind="result")
    ledger.link_artifact(digest, "result.json", art)
    ledger.finish(digest)
    return art


def _corrupt_artifact(ledger, art_digest):
    path = ledger._artifact_path(art_digest)
    with open(path, "wb") as fh:
        fh.write(b"{torn")
    return path


class StubQueue(JobQueue):
    """Asynchronous queue double: scripted outcomes, no execution."""

    jobs = 4
    synchronous = False

    def __init__(self, fail_times: int = 0):
        self.fail_times = fail_times
        self.submitted: List[Dict] = []
        self._pending: List[TaskOutcome] = []
        self._failed = 0

    def submit(self, key, item, timeout=None):
        self.submitted.append(item)
        if self._failed < self.fail_times:
            self._failed += 1
            self._pending.append(TaskOutcome(
                key=key, ok=False, error="scripted failure",
                kind="error"))
        else:
            self._pending.append(TaskOutcome(
                key=key, ok=True,
                value={"doc": {"ran": item["payload"]},
                       "files": {}, "telemetry": {}}))

    def poll(self, timeout=0.0):
        out, self._pending = self._pending, []
        return out

    def close(self):
        pass


class TestDependencyTriage:
    def _pair(self, ledger):
        dep = JobSpec("search", {"n": 1})
        job = JobSpec("select", {"n": 2}, deps=(dep.digest,))
        ledger.add_job(dep)
        ledger.add_job(job)
        return dep, job

    def test_ok_when_readable(self, ledger):
        dep, job = self._pair(ledger)
        ledger.claim_ready(1)
        _finish_with_doc(ledger, dep.digest, {"x": 1})
        status, _reason, docs = \
            LocalSource(ledger).dependency_docs(job.digest)
        assert status == "ok"
        assert docs == {dep.digest: {"x": 1}}

    def test_unreadable_dep_is_retryable(self, ledger):
        dep, job = self._pair(ledger)
        ledger.claim_ready(1)
        art = _finish_with_doc(ledger, dep.digest, {"x": 1})
        _corrupt_artifact(ledger, art)
        status, reason, _docs = \
            LocalSource(ledger).dependency_docs(job.digest)
        assert status == "retry"
        assert "unreadable" in reason

    def test_failed_dep_is_fatal(self, ledger):
        dep, job = self._pair(ledger)
        ledger.claim_ready(1)
        ledger.fail(dep.digest, "boom", retry_in=None)
        # The cascade already failed the dependent; triage agrees.
        status, reason, _docs = \
            LocalSource(ledger).dependency_docs(job.digest)
        assert status == "fatal"
        assert "failed" in reason

    def test_unknown_dep_is_fatal(self, ledger):
        job = JobSpec("select", {"n": 2}, deps=("0" * 64,))
        ledger.add_job(job)
        status, reason, _docs = \
            LocalSource(ledger).dependency_docs(job.digest)
        assert status == "fatal"
        assert "unknown" in reason

    def test_scheduler_retries_then_heals(self, ledger):
        """A corrupt dep artifact costs a retry, not the job: once the
        artifact heals, the dependent dispatches and completes."""
        dep, job = self._pair(ledger)
        ledger.claim_ready(1)
        art = _finish_with_doc(ledger, dep.digest, {"x": 1})
        path = _corrupt_artifact(ledger, art)
        events = []

        def on_event(digest, event, info):
            events.append((digest, event, info))
            if event == "retry":
                with open(path, "wb") as fh:  # the artifact heals
                    fh.write(json.dumps({"x": 1}).encode("utf-8"))

        queue = StubQueue()
        scheduler = Scheduler(ledger, queue=queue, retry_base=0.01,
                              on_event=on_event)
        counts = scheduler.run()
        assert counts == {"pending": 0, "running": 0, "done": 2,
                          "failed": 0}
        kinds = [e for _d, e, _i in events if _d == job.digest]
        assert "retry" in kinds and "done" in kinds
        assert "failed" not in kinds
        # The healed attempt actually shipped the dep docs to the queue.
        assert queue.submitted[-1]["deps"] == {dep.digest: {"x": 1}}

    def test_scheduler_hard_fails_on_failed_dep(self, ledger):
        dep = JobSpec("search", {"n": 1})
        job = JobSpec("select", {"n": 2}, deps=(dep.digest,))
        ledger.add_job(dep, max_attempts=1)
        ledger.add_job(job)

        queue = StubQueue(fail_times=1)  # dep's only attempt fails
        scheduler = Scheduler(ledger, queue=queue, retry_base=0.01)
        counts = scheduler.run()
        assert counts["failed"] == 2
        assert "upstream failed" in ledger.job(job.digest)["error"]


class TestRetryAttemptCounts:
    def test_events_carry_post_fail_attempts(self, ledger):
        """Retry events report the attempt count the ledger recorded
        for the failure — 1, 2, 3 — not the stale claim-time row."""
        spec = JobSpec("search", {"n": 1})
        ledger.add_job(spec, max_attempts=3)
        events = []
        queue = StubQueue(fail_times=2)
        scheduler = Scheduler(
            ledger, queue=queue, retry_base=0.01,
            on_event=lambda d, e, i: events.append((e, i)))
        counts = scheduler.run()
        assert counts["done"] == 1
        retries = [info["attempt"] for event, info in events
                   if event == "retry"]
        assert retries == [1, 2]
        # The third (successful) attempt started as attempt 3.
        starts = [info["attempt"] for event, info in events
                  if event == "start"]
        assert starts == [1, 2, 3]

    def test_exhaustion_fails_with_final_count(self, ledger):
        spec = JobSpec("search", {"n": 1})
        ledger.add_job(spec, max_attempts=2)
        events = []
        queue = StubQueue(fail_times=5)
        scheduler = Scheduler(
            ledger, queue=queue, retry_base=0.01,
            on_event=lambda d, e, i: events.append((e, i)))
        counts = scheduler.run()
        assert counts["failed"] == 1
        failed = [info["attempt"] for event, info in events
                  if event == "failed"]
        assert failed == [2]
