"""Lease/heartbeat claiming: expiry, reaping, owner guards, the pinned
retry-backoff sequence, backoff persistence across handoff, and the
v1 -> v2 schema migration."""

import os
import sqlite3
import time

import pytest

from repro.service.jobs import JobSpec
from repro.service.store import DEFAULT_LEASE, Ledger


@pytest.fixture
def ledger(tmp_path):
    with Ledger(str(tmp_path / "store")) as led:
        yield led


def _job(n=0, kind="search", deps=()):
    return JobSpec(kind, {"n": n}, deps=tuple(deps), role=f"job[{n}]")


class TestLeases:
    def test_claim_grants_lease(self, ledger):
        spec = _job(1)
        ledger.add_job(spec)
        now = time.time()
        job = ledger.claim_ready(1, owner="w1", lease=30.0)[0]
        assert job["lease_owner"] == "w1"
        assert job["lease_expires"] >= now + 29.0
        row = ledger.job(spec.digest)
        assert row["lease_owner"] == "w1"

    def test_heartbeat_extends_lease(self, ledger):
        spec = _job(1)
        ledger.add_job(spec)
        ledger.claim_ready(1, owner="w1", lease=5.0)
        before = ledger.job(spec.digest)["lease_expires"]
        kept = ledger.heartbeat([spec.digest], "w1", 60.0)
        assert kept == [spec.digest]
        assert ledger.job(spec.digest)["lease_expires"] > before + 30.0

    def test_heartbeat_rejects_wrong_owner(self, ledger):
        spec = _job(1)
        ledger.add_job(spec)
        ledger.claim_ready(1, owner="w1", lease=5.0)
        assert ledger.heartbeat([spec.digest], "w2", 60.0) == []
        # The real owner is unaffected.
        assert ledger.job(spec.digest)["lease_owner"] == "w1"

    def test_reap_requeues_only_expired(self, ledger):
        a, b = _job(1), _job(2)
        ledger.add_job(a)
        ledger.add_job(b)
        ledger.claim_ready(2, owner="w1", lease=30.0)
        assert ledger.reap_expired() == []
        # Fast-forward past the lease: both jobs fall.
        reaped = ledger.reap_expired(now=time.time() + 60.0)
        assert sorted(reaped) == sorted([a.digest, b.digest])
        for spec in (a, b):
            row = ledger.job(spec.digest)
            assert row["state"] == "pending"
            # Attempt refunded, interruption recorded — the same
            # contract as a graceful drain.
            assert row["attempts"] == 0
            assert ledger.attempts_of(spec.digest)[0]["outcome"] == \
                "interrupted"

    def test_recover_is_lease_scoped(self, ledger):
        live, stale = _job(1), _job(2)
        ledger.add_job(live)
        ledger.add_job(stale)
        ledger.claim_ready(1, owner="alive", lease=3600.0)
        ledger.claim_ready(1, owner="dead", lease=0.0)  # born expired
        assert ledger.recover() == 1
        # The live scheduler's lease was not stolen.
        assert ledger.job(live.digest)["state"] == "running"
        assert ledger.job(stale.digest)["state"] == "pending"

    def test_owner_guard_on_finish(self, ledger):
        spec = _job(1)
        ledger.add_job(spec)
        ledger.claim_ready(1, owner="w1", lease=0.0)
        # Lease expires, job re-granted to w2.
        assert ledger.reap_expired() == [spec.digest]
        ledger.claim_ready(1, owner="w2", lease=60.0)
        # The zombie's completion is rejected; the new owner's works.
        assert not ledger.finish(spec.digest, owner="w1")
        assert ledger.job(spec.digest)["state"] == "running"
        assert ledger.finish(spec.digest, owner="w2")
        assert ledger.job(spec.digest)["state"] == "done"
        # Exactly one attempt closed 'ok': no double completion.
        outcomes = [a["outcome"] for a in ledger.attempts_of(spec.digest)]
        assert outcomes.count("ok") == 1

    def test_owner_guard_on_fail_and_release(self, ledger):
        spec = _job(1)
        ledger.add_job(spec)
        ledger.claim_ready(1, owner="w1", lease=0.0)
        ledger.reap_expired()
        ledger.claim_ready(1, owner="w2", lease=60.0)
        assert ledger.fail(spec.digest, "zombie", retry_in=0.0,
                           owner="w1") == "running"
        assert not ledger.release(spec.digest, owner="w1")
        assert ledger.job(spec.digest)["state"] == "running"
        assert ledger.job(spec.digest)["error"] is None
        assert ledger.release(spec.digest, owner="w2")
        assert ledger.job(spec.digest)["state"] == "pending"

    def test_finish_clears_lease(self, ledger):
        spec = _job(1)
        ledger.add_job(spec)
        ledger.claim_ready(1, owner="w1", lease=60.0)
        ledger.finish(spec.digest, owner="w1")
        row = ledger.job(spec.digest)
        assert row["lease_owner"] == "" and row["lease_expires"] == 0

    def test_legacy_unowned_claim_still_recovers(self, ledger):
        # lease=0 claims (the v1 single-writer mode) are born expired:
        # recover() requeues them exactly as before.
        spec = _job(1)
        ledger.add_job(spec)
        ledger.claim_ready(1)
        assert ledger.recover() == 1
        assert ledger.job(spec.digest)["state"] == "pending"


class TestBackoffSequence:
    """The retry backoff is computed from the ledger's own post-fail
    attempt count inside the failing transaction — never from a stale
    claim-time row — so the sequence is exactly base * 2^(n-1)."""

    def test_pinned_quarter_half_one(self, ledger):
        spec = _job(1)
        ledger.add_job(spec, max_attempts=4)
        waits = []
        now = time.time()
        for _ in range(3):
            claimed = ledger.claim_ready(1, now=now, owner="w1",
                                         lease=60.0)
            assert claimed
            info = ledger.fail_attempt(spec.digest, "boom", 0.25,
                                       owner="w1")
            assert info["state"] == "pending"
            waits.append(info["retry_in"])
            now = ledger.job(spec.digest)["not_before"] + 0.001
        assert waits == [0.25, 0.5, 1.0]

    def test_exhaustion_reports_no_retry(self, ledger):
        spec = _job(1)
        ledger.add_job(spec, max_attempts=1)
        ledger.claim_ready(1, owner="w1", lease=60.0)
        info = ledger.fail_attempt(spec.digest, "boom", 0.25, owner="w1")
        assert info["state"] == "failed"
        assert info["retry_in"] is None

    def test_attempt_count_is_post_fail(self, ledger):
        spec = _job(1)
        ledger.add_job(spec, max_attempts=5)
        now = time.time()
        for expected in (1, 2, 3):
            ledger.claim_ready(1, now=now, owner="w1", lease=60.0)
            info = ledger.fail_attempt(spec.digest, "boom", 0.25,
                                       owner="w1")
            assert info["attempts"] == expected
            now = ledger.job(spec.digest)["not_before"] + 0.001


class TestBackoffHandoff:
    """In-memory monotonic backoff deadlines are flushed into the epoch
    ``not_before`` column at handoff points, so another scheduler
    honors the remaining delay."""

    def test_close_persists_remaining_delay(self, tmp_path):
        root = str(tmp_path / "store")
        spec = _job(1)
        with Ledger(root) as led:
            led.add_job(spec, max_attempts=3)
            led.claim_ready(1, owner="w1", lease=60.0)
            led.fail(spec.digest, "boom", retry_in=3600.0, owner="w1")
            # Simulate a backward wall-clock step losing the epoch
            # stamp: without the flush, the next ledger would claim
            # this job an hour early.
            with led._tx() as conn:
                conn.execute("UPDATE jobs SET not_before=0 "
                             "WHERE digest=?", (spec.digest,))
        with Ledger(root) as led:
            assert led.claim_ready(1, owner="w2", lease=60.0) == []
            remaining = led.job(spec.digest)["not_before"] - time.time()
            assert 3500.0 < remaining <= 3600.0

    def test_flush_only_touches_pending_jobs(self, tmp_path):
        root = str(tmp_path / "store")
        spec = _job(1)
        with Ledger(root) as led:
            led.add_job(spec, max_attempts=3)
            led.claim_ready(1, owner="w1", lease=60.0)
            led.fail(spec.digest, "boom", retry_in=3600.0, owner="w1")
            # Another scheduler claims it (epoch mode skips the gate)
            # and finishes; the stale deadline must not resurrect a
            # not_before on the done row at close time.
            led._backoff[spec.digest] = led._backoff.get(
                spec.digest, time.monotonic() + 3600.0)
            now = led.job(spec.digest)["not_before"] + 1
            led.claim_ready(1, now=now, owner="w2", lease=60.0)
            led.finish(spec.digest, owner="w2")
            before = led.job(spec.digest)["not_before"]
        with Ledger(root) as led:
            assert led.job(spec.digest)["state"] == "done"
            assert led.job(spec.digest)["not_before"] == before


class TestMigration:
    def test_v1_ledger_upgrades_in_place(self, tmp_path):
        root = str(tmp_path / "store")
        os.makedirs(root)
        conn = sqlite3.connect(os.path.join(root, "ledger.sqlite3"))
        conn.executescript("""
            CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
            INSERT INTO meta VALUES ('schema_version', '1');
            CREATE TABLE jobs (
                digest TEXT PRIMARY KEY,
                kind TEXT NOT NULL,
                payload TEXT NOT NULL,
                role TEXT NOT NULL DEFAULT '',
                state TEXT NOT NULL DEFAULT 'pending',
                attempts INTEGER NOT NULL DEFAULT 0,
                max_attempts INTEGER NOT NULL DEFAULT 3,
                not_before REAL NOT NULL DEFAULT 0,
                error TEXT,
                created_at REAL NOT NULL,
                updated_at REAL NOT NULL
            );
            INSERT INTO jobs (digest, kind, payload, state, attempts,
                              created_at, updated_at)
            VALUES ('abc123', 'search', '{}', 'running', 1, 0, 0);
        """)
        conn.commit()
        conn.close()
        with Ledger(root) as led:
            row = led.job("abc123")
            # Migrated rows read as expired leases with no owner...
            assert row["lease_owner"] == ""
            assert row["lease_expires"] == 0
            # ...so v1 crash recovery works unchanged.
            assert led.recover() == 1
            assert led.job("abc123")["state"] == "pending"
        with Ledger(root) as led:  # reopen: migration is idempotent
            assert led.job("abc123") is not None
