"""HTTP worker fleet: a ``serve --http --dispatch none`` coordinator,
jobs submitted over the wire, two pull-worker agents, one SIGKILLed
mid-search.  The survivor must absorb the dead agent's job from its
last uploaded checkpoint and the final artifacts must be bit-identical
to a local, single-process run."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import Ledger, Scheduler, submit_campaign
from repro.service.campaign import CampaignSpec

CHECKPOINT_EVERY = 100
LEASE = 2.0


def _spec():
    return CampaignSpec(kernels=(("dot", 0.0), ("dot", 1.0e5)), chains=2,
                        proposals=2_400, testcases=8, seed=0,
                        validate_proposals=300, verify_budget=64)


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                       "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


def _coordinator(store):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", store,
         "--http", "0", "--dispatch", "none", "--lease", str(LEASE),
         "--quiet"],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True)
    line = proc.stdout.readline()
    assert line.startswith("serving HTTP on "), line
    return proc, line.split()[-1].strip()


def _agent(url, workdir):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "agent", "--url", url,
         "--workdir", workdir, "--jobs", "1", "--lease", str(LEASE),
         "--checkpoint-every", str(CHECKPOINT_EVERY), "--quiet"],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def _wait_for_checkpoints(store, distinct, timeout=90.0):
    """Watch the *server's* checkpoint directory: agents upload their
    progress on every heartbeat, so a file here proves the server could
    hand the job to a different agent."""
    checkpoints = os.path.join(store, "checkpoints")
    seen = set()
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.isdir(checkpoints):
            seen.update(name for name in os.listdir(checkpoints)
                        if name.endswith(".json"))
        if len(seen) >= distinct:
            return
        time.sleep(0.05)
    pytest.fail(f"saw {len(seen)} uploaded checkpoint(s), wanted "
                f"{distinct}")


@pytest.mark.slow
def test_fleet_survives_agent_kill_bit_identical(tmp_path):
    spec = _spec()

    # Reference: the same campaign, one process, no network.
    ref_root = str(tmp_path / "reference")
    with Ledger(ref_root) as ledger:
        cid, _ = submit_campaign(ledger, spec, name="fleet")
        Scheduler(ledger, jobs=1,
                  checkpoint_every=CHECKPOINT_EVERY).run()
        assert ledger.counts()["failed"] == 0
        reference = {digest: ledger.artifacts_of(digest)
                     for digest, _role in ledger.campaign_roles(cid)}

    root = str(tmp_path / "fleet")
    coordinator = victim = survivor = None
    try:
        coordinator, url = _coordinator(root)

        # Submit over the wire; a duplicate submit is a cheap no-op.
        submit = subprocess.run(
            [sys.executable, "-m", "repro", "submit", "--url", url,
             "--kernel", "dot", "--etas", "0,1e5", "--chains", "2",
             "--proposals", "2400", "--testcases", "8", "--seed", "0",
             "--validate-proposals", "300", "--verify-budget", "64",
             "--name", "fleet"],
            env=_env(), capture_output=True, text=True)
        assert submit.returncode == 0, submit.stderr
        assert "new job(s), 0 reused" in submit.stdout, submit.stdout

        victim = _agent(url, str(tmp_path / "w1"))
        survivor = _agent(url, str(tmp_path / "w2"))

        # Both agents are mid-search once two distinct uploaded
        # checkpoints exist; SIGKILL one of them.
        _wait_for_checkpoints(root, distinct=2)
        victim.send_signal(signal.SIGKILL)
        victim.wait()

        _out, err = survivor.communicate(timeout=300)
        assert survivor.returncode == 0, err.decode()
    finally:
        for proc in (victim, survivor, coordinator):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()

    with Ledger(root) as ledger:
        counts = ledger.counts()
        assert counts["failed"] == 0 and counts["pending"] == 0 \
            and counts["running"] == 0

        # Exactly one completion per job across the whole fleet.
        for row in ledger.jobs():
            outcomes = [a["outcome"] for a in
                        ledger.attempts_of(row["digest"])]
            assert outcomes.count("ok") == 1

        # The dead agent's lease expired, its job was reaped...
        interrupted = [
            row["digest"] for row in ledger.jobs()
            if any(a["outcome"] == "interrupted"
                   for a in ledger.attempts_of(row["digest"]))]
        assert interrupted, "the kill interrupted no leased job"

        # ...and the survivor resumed it from the uploaded checkpoint.
        resumed_at = [
            rec["data"]["resumed_at"]
            for digest in interrupted
            for rec in ledger.telemetry_of(digest)
            if rec["kind"] == "attempt" and "resumed_at" in rec["data"]
        ]
        assert any(offset >= CHECKPOINT_EVERY for offset in resumed_at)

        # Artifact digests are sha256 of content, so digest equality
        # is byte equality with the no-network reference run.
        cid = ledger.campaigns()[0]["id"]
        fleet = {digest: ledger.artifacts_of(digest)
                 for digest, _role in ledger.campaign_roles(cid)}
        assert any("certificate.json" in named
                   for named in fleet.values())
    assert fleet == reference
