"""Two schedulers, one ledger: lease claiming must prevent double
execution, and a SIGKILLed scheduler's leases must expire so its jobs
resume on the survivor — bit-identical to an uninterrupted run.

This is the multi-node acceptance test, so both schedulers are real
``repro serve`` subprocesses sharing the store directory, and the kill
is SIGKILL (no cleanup handlers), exactly like a host loss.
"""

import os
import subprocess
import sys
import time

import pytest

from repro.service import Ledger, Scheduler, submit_campaign
from repro.service.campaign import CampaignSpec

CHECKPOINT_EVERY = 100
LEASE = 2.0  # short, so the survivor reaps the dead scheduler quickly


def _spec():
    return CampaignSpec(kernels=(("dot", 0.0), ("dot", 1.0e5)), chains=2,
                        proposals=2_400, testcases=8, seed=0,
                        validate_proposals=300, verify_budget=64)


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                       "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


def _serve(store):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", store,
         "--jobs", "1", "--checkpoint-every", str(CHECKPOINT_EVERY),
         "--lease", str(LEASE), "--quiet"],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def _wait_for_checkpoints(store, distinct, timeout=90.0):
    checkpoints = os.path.join(store, "checkpoints")
    seen = set()
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.isdir(checkpoints):
            seen.update(name for name in os.listdir(checkpoints)
                        if name.endswith(".json"))
        if len(seen) >= distinct:
            return
        time.sleep(0.05)
    pytest.fail(f"saw {len(seen)} checkpointed job(s), wanted {distinct}")


@pytest.mark.slow
def test_two_schedulers_one_killed_no_double_runs(tmp_path):
    spec = _spec()

    # Reference: one scheduler, uninterrupted, in-process.
    ref_root = str(tmp_path / "reference")
    with Ledger(ref_root) as ledger:
        cid, _ = submit_campaign(ledger, spec, name="contention")
        Scheduler(ledger, jobs=1,
                  checkpoint_every=CHECKPOINT_EVERY).run()
        assert ledger.counts()["failed"] == 0
        reference = {digest: ledger.artifacts_of(digest)
                     for digest, _role in ledger.campaign_roles(cid)}

    # Contended run: two serve processes share the ledger; one dies.
    root = str(tmp_path / "contended")
    with Ledger(root) as ledger:
        submit_campaign(ledger, spec, name="contention")

    victim = _serve(root)
    survivor = None
    try:
        _wait_for_checkpoints(root, distinct=1)
        survivor = _serve(root)
        # Two distinct live checkpoints = both schedulers are mid-job
        # (finished jobs delete their checkpoint files), so the kill
        # interrupts the victim's job with resume state on disk.
        _wait_for_checkpoints(root, distinct=2)
        victim.kill()
        victim.wait()

        stdout, stderr = survivor.communicate(timeout=300)
        assert survivor.returncode == 0, stderr.decode()
    finally:
        for proc in (victim, survivor):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()

    with Ledger(root) as ledger:
        counts = ledger.counts()
        assert counts["failed"] == 0 and counts["pending"] == 0 \
            and counts["running"] == 0

        # No job ran (to completion) twice: the owner guard admits
        # exactly one 'ok' attempt ever, even across the reap/regrant.
        for row in ledger.jobs():
            outcomes = [a["outcome"] for a in
                        ledger.attempts_of(row["digest"])]
            assert outcomes.count("ok") == 1, \
                f"job {row['digest'][:12]} completed {outcomes}"

        # The victim's lease expired and its job was reaped...
        interrupted = [
            row["digest"] for row in ledger.jobs()
            if any(a["outcome"] == "interrupted"
                   for a in ledger.attempts_of(row["digest"]))]
        assert interrupted, "the kill interrupted no leased job"

        # ...and resumed from its checkpoint, not from scratch.
        resumed_at = [
            rec["data"]["resumed_at"]
            for digest in interrupted
            for rec in ledger.telemetry_of(digest)
            if rec["kind"] == "attempt" and "resumed_at" in rec["data"]
        ]
        assert any(offset >= CHECKPOINT_EVERY for offset in resumed_at)

        # The payoff: every artifact (certificates included) is byte-
        # identical to the uninterrupted single-scheduler run.
        cid = ledger.campaigns()[0]["id"]
        contended = {digest: ledger.artifacts_of(digest)
                     for digest, _role in ledger.campaign_roles(cid)}
        assert any("certificate.json" in named
                   for named in contended.values())
    assert contended == reference


@pytest.mark.slow
def test_two_schedulers_to_completion_no_double_runs(tmp_path):
    """Both schedulers live to the end: leases (not luck) partition the
    work, and both exit once the shared store is idle."""
    root = str(tmp_path / "store")
    with Ledger(root) as ledger:
        submit_campaign(
            ledger,
            CampaignSpec(kernels=(("dot", 1.0e5),), chains=2,
                         proposals=1_200, testcases=8, seed=0,
                         stages=("search", "select")),
            name="pair")

    first = _serve(root)
    second = _serve(root)
    try:
        _out1, err1 = first.communicate(timeout=300)
        _out2, err2 = second.communicate(timeout=300)
        assert first.returncode == 0, err1.decode()
        assert second.returncode == 0, err2.decode()
    finally:
        for proc in (first, second):
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    with Ledger(root) as ledger:
        counts = ledger.counts()
        assert counts["done"] == 3 and counts["failed"] == 0
        for row in ledger.jobs():
            outcomes = [a["outcome"] for a in
                        ledger.attempts_of(row["digest"])]
            assert outcomes.count("ok") == 1
