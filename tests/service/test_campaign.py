"""Campaign planning: DAG shape, digest stability, ledger dedupe."""

import pytest

from repro.service.campaign import (CampaignSpec, campaign_id,
                                    plan_campaign, submit_campaign)
from repro.service.jobs import job_digest
from repro.service.store import Ledger


def _spec(**overrides):
    base = dict(kernels=(("dot", 0.0), ("delta", 1.0e5)), chains=3,
                proposals=100, testcases=8, seed=0)
    base.update(overrides)
    return CampaignSpec(**base)


class TestPlan:
    def test_dag_shape(self):
        plan = plan_campaign(_spec())
        # Per cell: 3 searches + select + validate + verify.
        assert len(plan) == 2 * (3 + 3)
        by_digest = {job.digest: job for job in plan}
        selects = [j for j in plan if j.kind == "select"]
        assert len(selects) == 2
        for select in selects:
            assert len(select.deps) == 3
            for dep in select.deps:
                assert by_digest[dep].kind == "search"
        verifies = [j for j in plan if j.kind == "verify"]
        for verify in verifies:
            kinds = sorted(by_digest[d].kind for d in verify.deps)
            assert kinds == ["select", "validate"]

    def test_chain_seeds_are_derived(self):
        plan = plan_campaign(_spec())
        searches = [j for j in plan if j.kind == "search"
                    and j.payload["kernel"] == "dot"]
        assert [j.payload["seed"] for j in searches] == [1, 2, 3]
        assert all(j.payload["tests_seed"] == 0 for j in searches)

    def test_verify_engine_by_eta(self):
        plan = plan_campaign(_spec())
        engines = {j.payload["kernel"]: j.payload["engine"]
                   for j in plan if j.kind == "verify"}
        assert engines == {"dot": "uf", "delta": "bnb"}

    def test_digests_stable_across_plans(self):
        one = [j.digest for j in plan_campaign(_spec())]
        two = [j.digest for j in plan_campaign(_spec())]
        assert one == two

    def test_eta_changes_search_digests(self):
        base = {j.role: j.digest for j in plan_campaign(_spec())}
        moved = {j.role: j.digest
                 for j in plan_campaign(_spec(kernels=(("dot", 1.0),
                                                       ("delta", 1.0e5))))}
        assert base["dot/eta=0/search[0]"] != moved["dot/eta=1/search[0]"]
        # The untouched cell is unchanged: overlap dedupes.
        assert base["delta/eta=100000/search[0]"] == \
            moved["delta/eta=100000/search[0]"]

    def test_stage_prefixes(self):
        plan = plan_campaign(_spec(stages=("search", "select")))
        assert sorted({j.kind for j in plan}) == ["search", "select"]
        with pytest.raises(ValueError, match="upstream"):
            _spec(stages=("search", "verify"))

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            CampaignSpec(kernels=())
        with pytest.raises(ValueError):
            _spec(chains=0)
        with pytest.raises(ValueError, match="unknown stages"):
            _spec(stages=("search", "frobnicate"))

    def test_spec_roundtrip(self):
        spec = _spec()
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        assert campaign_id(spec) == campaign_id(CampaignSpec.from_dict(
            spec.to_dict()))


class TestSubmit:
    def test_submit_then_resubmit_dedupes(self, tmp_path):
        with Ledger(str(tmp_path / "store")) as ledger:
            cid, counts = submit_campaign(ledger, _spec(), name="c")
            assert counts == {"jobs": 12, "new": 12, "reused": 0}
            cid2, counts2 = submit_campaign(ledger, _spec(), name="c")
            assert cid2 == cid
            assert counts2 == {"jobs": 12, "new": 0, "reused": 12}

    def test_overlapping_campaign_reuses_shared_cells(self, tmp_path):
        with Ledger(str(tmp_path / "store")) as ledger:
            submit_campaign(ledger, _spec(), name="c")
            wider = _spec(kernels=(("dot", 0.0), ("delta", 1.0e5),
                                   ("scale", 0.0)))
            cid, counts = submit_campaign(ledger, wider, name="c2")
            assert counts["reused"] == 12
            assert counts["new"] == 6

    def test_job_digest_is_kind_plus_payload(self):
        assert job_digest("search", {"a": 1}) != \
            job_digest("select", {"a": 1})
        assert job_digest("search", {"a": 1, "b": 2}) == \
            job_digest("search", {"b": 2, "a": 1})
