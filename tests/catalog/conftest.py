"""Synthetic campaign results for catalog tests.

A catalog is assembled from select/verify result documents, so most of
the suite fabricates those documents directly — no search or
verification has to run to exercise frontier marking, integrity
checking, or budget selection.
"""

from __future__ import annotations

import pytest

from repro.catalog.frontier import assemble_catalog, program_text_digest
from repro.core.serialize import enc_float


def select_doc(text: str, latency: int, target_latency: int = 100):
    return {"best_correct": {"text": text}, "latency": latency,
            "target_latency": target_latency}


def uf_doc(text: str, proved: bool = True):
    return {"engine": "uf", "proved": proved,
            "rewrite_digest": program_text_digest(text),
            "target_digest": "t" * 64}


def bnb_doc(text: str, bound, certificate: str = "c" * 64):
    return {"engine": "bnb", "bound_ulps": enc_float(bound),
            "rewrite_digest": program_text_digest(text),
            "target_digest": "t" * 64,
            "certificate_digest": certificate}


def make_cells(*specs):
    """``specs`` are ``(kernel, eta, select_doc, verify_doc)``; returns
    the ``(cells, docs)`` pair :func:`assemble_catalog` consumes, with
    distinct synthetic job digests per cell."""
    cells, docs = [], {}
    for i, (kernel, eta, sel, ver) in enumerate(specs):
        sel_digest = f"{i:02x}se" + "0" * 60
        ver_digest = f"{i:02x}ve" + "0" * 60
        docs[sel_digest] = sel
        docs[ver_digest] = ver
        cells.append((kernel, eta, sel_digest, ver_digest))
    return cells, docs


def plant_campaign(ledger, cid="cat-test", cells=None, finish=True):
    """Fabricate a finished campaign in a real ledger: per cell one
    done select and one done verify job with result documents, linked
    under the roles the planner would use."""
    from repro.core.serialize import canonical_json
    from repro.service.jobs import JobSpec

    if cells is None:
        cells = [("dot", 0.0, select_doc("d0", 80), uf_doc("d0")),
                 ("dot", 10.0, select_doc("d10", 50),
                  bnb_doc("d10", 4.0))]
    ledger.add_campaign(cid, "test", {"cells": len(cells)})
    specs = []
    for kernel, eta, sel, ver in cells:
        sel_spec = JobSpec("select", {"kernel": kernel, "eta": eta},
                           role=f"{kernel}/eta={eta:g}/select")
        ver_spec = JobSpec("verify", {"kernel": kernel, "eta": eta},
                           role=f"{kernel}/eta={eta:g}/verify")
        for spec, doc in ((sel_spec, sel), (ver_spec, ver)):
            ledger.add_job(spec)
            ledger.link_campaign(cid, spec.digest, role=spec.role)
            art = ledger.put_artifact(
                canonical_json(doc).encode("utf-8"), kind="result")
            ledger.link_artifact(spec.digest, "result.json", art)
            specs.append(spec)
    if finish:
        for job in ledger.claim_ready(len(specs) + 8):
            ledger.finish(job["digest"])
    return cid


@pytest.fixture
def sweep_body():
    """A two-kernel catalog with a real trade-off curve.

    ``dot``: target latency 100; eta=0 proves equivalence at latency 80,
    eta=10 certifies 4 ULPs at latency 50, eta=100 certifies 16 ULPs at
    latency 20, and eta=5 (2 ULPs at latency 90) is dominated by the
    eta=0 rewrite, which is both faster and error-free.  ``add``: a
    single proved rewrite at half the target's latency.
    """
    cells, docs = make_cells(
        ("dot", 0.0, select_doc("d0", 80), uf_doc("d0")),
        ("dot", 5.0, select_doc("d5", 90), bnb_doc("d5", 2.0)),
        ("dot", 10.0, select_doc("d10", 50), bnb_doc("d10", 4.0)),
        ("dot", 100.0, select_doc("d100", 20), bnb_doc("d100", 16.0)),
        ("add", 0.0, select_doc("a0", 30, target_latency=60),
         uf_doc("a0")),
    )
    return assemble_catalog(cells, docs)
