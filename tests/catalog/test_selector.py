"""Workload selection: composition math, greedy walk, feasibility."""

import pytest

from repro.catalog.frontier import CatalogError
from repro.catalog.selector import (
    WorkloadKernel,
    parse_workload_spec,
    resolve_workload,
    select_for_budget,
)
from repro.core.serialize import dec_float


class TestWorkloads:
    def test_preset_resolves(self):
        kernels = resolve_workload("aek")
        assert {k.name for k in kernels} == \
            {"scale", "dot", "add", "delta"}

    def test_unknown_preset(self):
        with pytest.raises(CatalogError, match="unknown workload"):
            resolve_workload("raytracer9000")

    def test_mapping_and_list_forms(self):
        assert resolve_workload({"dot": 3}) == \
            [WorkloadKernel("dot", calls=3)]
        kernels = resolve_workload(
            ["add", {"name": "dot", "calls": 2, "weight": 0.5}])
        assert kernels[0] == WorkloadKernel("add")
        assert kernels[1].calls == 2 and kernels[1].weight == 0.5

    def test_duplicates_and_empty_are_rejected(self):
        with pytest.raises(CatalogError, match="duplicate"):
            resolve_workload(["dot", "dot"])
        with pytest.raises(CatalogError, match="empty"):
            resolve_workload([])

    def test_spec_parsing(self):
        assert parse_workload_spec("aek") == "aek"
        assert parse_workload_spec("dot:3,add") == {"dot": 3, "add": 1}
        with pytest.raises(CatalogError, match="bad workload item"):
            parse_workload_spec("dot:lots")
        with pytest.raises(CatalogError, match="empty workload"):
            parse_workload_spec(",")


class TestSelect:
    def test_zero_budget_is_always_feasible(self, sweep_body):
        out = select_for_budget(sweep_body, {"dot": 1, "add": 1}, 0.0)
        assert dec_float(out["bound"]) == 0.0
        assert out["assignment"]["dot"]["id"] == "dot/eta=0"
        assert out["assignment"]["add"]["id"] == "add/eta=0"
        # Even at zero budget the proved-equivalent rewrites win.
        assert out["latency"] == 80 + 30
        assert out["target_latency"] == 100 + 60

    def test_budget_buys_the_frontier_walk(self, sweep_body):
        out = select_for_budget(sweep_body, {"dot": 1}, 4.0)
        assert out["assignment"]["dot"]["id"] == "dot/eta=10"
        out = select_for_budget(sweep_body, {"dot": 1}, 16.0)
        assert out["assignment"]["dot"]["id"] == "dot/eta=100"
        assert dec_float(out["bound"]) == 16.0
        assert [s["to"] for s in out["steps"]] == \
            ["dot/eta=10", "dot/eta=100"]

    def test_partial_budget_stops_short(self, sweep_body):
        out = select_for_budget(sweep_body, {"dot": 1}, 15.0)
        assert out["assignment"]["dot"]["id"] == "dot/eta=10"
        assert dec_float(out["bound"]) == 4.0

    def test_error_weights_scale_the_composition(self, sweep_body):
        # weight 4 makes the 4-ULP point cost 16 of the budget.
        workload = [WorkloadKernel("dot", calls=1, weight=4.0)]
        out = select_for_budget(sweep_body, workload, 15.0)
        assert out["assignment"]["dot"]["id"] == "dot/eta=0"
        out = select_for_budget(sweep_body, workload, 16.0)
        assert out["assignment"]["dot"]["id"] == "dot/eta=10"
        assert dec_float(out["bound"]) == 16.0

    def test_calls_weight_the_latency_not_the_error(self, sweep_body):
        out = select_for_budget(sweep_body, {"dot": 3, "add": 2}, 100.0)
        assert out["latency"] == 3 * 20 + 2 * 30
        assert out["target_latency"] == 3 * 100 + 2 * 60
        assert dec_float(out["bound"]) == 16.0

    def test_negative_budget_is_rejected(self, sweep_body):
        with pytest.raises(CatalogError, match=">= 0"):
            select_for_budget(sweep_body, {"dot": 1}, -1.0)

    def test_missing_kernel_is_rejected(self, sweep_body):
        with pytest.raises(CatalogError, match="not in catalog"):
            select_for_budget(sweep_body, {"cos": 1}, 1.0)

    def test_per_kernel_cap(self, sweep_body):
        out = select_for_budget(sweep_body, {"dot": 1}, 100.0,
                                max_error={"dot": 4.0})
        assert out["assignment"]["dot"]["id"] == "dot/eta=10"
        with pytest.raises(CatalogError, match="no frontier entry"):
            select_for_budget(sweep_body, {"dot": 1}, 100.0,
                              max_error={"dot": -1.0})

    def test_infeasible_budget_reports_floors(self, sweep_body):
        # Drop the zero-error entries so the kernel has an error floor.
        entries = sweep_body["kernels"]["dot"]["entries"]
        for entry in entries:
            if dec_float(entry["error_ulps"]) == 0.0:
                entry["on_frontier"] = False
        with pytest.raises(CatalogError, match="infeasible") as err:
            select_for_budget(sweep_body, {"dot": 1}, 1.0)
        assert "dot=4" in str(err.value)

    def test_deterministic_output(self, sweep_body):
        one = select_for_budget(sweep_body, {"dot": 2, "add": 1}, 10.0)
        two = select_for_budget(sweep_body, {"dot": 2, "add": 1}, 10.0)
        assert one == two
