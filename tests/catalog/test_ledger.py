"""Ledger-backed catalog flow: build determinism, serving heads,
certificate-digest fallback, and (slow) the full campaign-to-selection
round trip with the checker re-validating every served certificate."""

import json

import pytest

from repro.catalog import (
    build_catalog,
    catalog_digest,
    fastest_under,
    resolve_catalog,
    select_for_budget,
    store_catalog,
    verify_catalog,
)
from repro.catalog.frontier import CatalogError
from repro.core.serialize import canonical_json
from repro.service.campaign import ALL_STAGES, CampaignSpec, submit_campaign
from repro.service.store import Ledger

from tests.catalog.conftest import (
    bnb_doc,
    plant_campaign as _plant_campaign,
    select_doc,
    uf_doc,
)


@pytest.fixture
def ledger(tmp_path):
    with Ledger(str(tmp_path / "store")) as led:
        yield led


class TestBuild:
    def test_build_is_byte_identical(self, ledger):
        cid = _plant_campaign(ledger)
        one = build_catalog(ledger, cid)
        two = build_catalog(ledger, cid)
        assert canonical_json(one) == canonical_json(two)

    def test_unknown_campaign(self, ledger):
        with pytest.raises(CatalogError, match="no such campaign"):
            build_catalog(ledger, "nope")

    def test_unfinished_cell_is_rejected(self, ledger):
        cid = _plant_campaign(ledger, finish=False)
        with pytest.raises(CatalogError, match="not finished"):
            build_catalog(ledger, cid)

    def test_certificate_digest_falls_back_to_the_artifact_link(
            self, ledger):
        # Verify documents written before the certificate_digest field
        # carry the certificate as a linked artifact only.
        ver = bnb_doc("d10", 4.0, certificate=None)
        cid = _plant_campaign(
            ledger, cells=[("dot", 10.0, select_doc("d10", 50), ver)])
        verify_digest = next(
            row["digest"] for row in ledger.campaign_jobs(cid)
            if row["kind"] == "verify")
        cert = ledger.put_artifact(b'{"fake": "certificate"}',
                                   kind="certificate")
        ledger.link_artifact(verify_digest, "certificate.json", cert)
        body = build_catalog(ledger, cid)
        entry = next(e for e in body["kernels"]["dot"]["entries"]
                     if e["id"] == "dot/eta=10")
        assert entry["certificate"] == cert


class TestServingHead:
    def test_store_points_latest_and_campaign_heads(self, ledger):
        cid = _plant_campaign(ledger)
        body = build_catalog(ledger, cid)
        digest = store_catalog(ledger, body, campaign=cid)
        assert digest == catalog_digest(body)
        assert resolve_catalog(ledger) == digest
        assert resolve_catalog(ledger, campaign=cid) == digest
        # The artifact bytes ARE the canonical body: content addressing
        # makes the artifact digest and the catalog digest coincide.
        assert ledger.get_artifact(digest) == \
            canonical_json(body).encode("utf-8")

    def test_latest_follows_the_newest_store(self, ledger):
        cid = _plant_campaign(ledger)
        body = build_catalog(ledger, cid)
        first = store_catalog(ledger, body, campaign=cid)
        other = _plant_campaign(
            ledger, cid="cat-2",
            cells=[("add", 0.0, select_doc("a0", 30, target_latency=60),
                    uf_doc("a0"))])
        second = store_catalog(ledger, build_catalog(ledger, other),
                               campaign=other)
        assert first != second
        assert resolve_catalog(ledger) == second
        assert resolve_catalog(ledger, campaign=cid) == first

    def test_no_catalog_resolves_to_none(self, ledger):
        assert resolve_catalog(ledger) is None
        assert resolve_catalog(ledger, campaign="ghost") is None


@pytest.mark.slow
def test_campaign_to_selection_round_trip(tmp_path):
    """The acceptance path: sweep -> catalog stage -> checker
    re-validation -> budget selection, all against one real ledger."""
    spec = CampaignSpec(kernels=(("dot", 0.0), ("dot", 1.0e5)), chains=2,
                        proposals=2_400, testcases=8, seed=0,
                        validate_proposals=300, verify_budget=64,
                        stages=ALL_STAGES)
    from repro.service.scheduler import Scheduler

    with Ledger(str(tmp_path / "store")) as ledger:
        cid, _ = submit_campaign(ledger, spec, name="cat")
        Scheduler(ledger, jobs=1).run()
        assert ledger.counts()["failed"] == 0

        # The terminal catalog job stored the canonical body and moved
        # the serving head; a fresh ledger-side build reproduces the
        # same bytes.
        head = resolve_catalog(ledger, campaign=cid)
        assert head is not None
        body = json.loads(ledger.get_artifact(head))
        rebuilt = build_catalog(ledger, cid)
        assert canonical_json(rebuilt) == canonical_json(body)
        assert catalog_digest(body) == head

        # Every served certificate survives the independent checker.
        assert verify_catalog(ledger, body) == []

        # The eta=0 cell proves equivalence, so a zero-error lookup and
        # a zero-budget selection both succeed.
        assert fastest_under(body, "dot", 0.0)["error_ulps"] == 0.0
        out = select_for_budget(body, {"dot": 2}, 0.0)
        assert out["assignment"]["dot"]["error_ulps"] == 0.0
        assert out["latency"] <= out["target_latency"]
