"""Catalog persistence: wrapper integrity, tamper detection, queries."""

import json

import pytest

from repro.catalog.document import (
    catalog_summary,
    fastest_under,
    load_catalog,
    load_catalog_bytes,
    query_catalog,
    save_catalog,
    unwrap_catalog,
    wrap_catalog,
)
from repro.catalog.frontier import CatalogError, catalog_digest
from repro.core.serialize import canonical_json, dec_float


class TestWrapper:
    def test_round_trip(self, sweep_body, tmp_path):
        path = str(tmp_path / "catalog.json")
        digest = save_catalog(path, sweep_body,
                              measurements={"entries": {}})
        assert digest == catalog_digest(sweep_body)
        body, measurements = load_catalog(path)
        assert body == sweep_body
        assert measurements == {"entries": {}}

    def test_tampered_body_is_rejected(self, sweep_body, tmp_path):
        path = str(tmp_path / "catalog.json")
        save_catalog(path, sweep_body)
        with open(path) as fh:
            doc = json.load(fh)
        # Flip one certified bound after the fact.
        doc["catalog"]["kernels"]["dot"]["entries"][0]["error_ulps"] = 0.5
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(CatalogError, match="tampered or corrupt"):
            load_catalog(path)

    def test_forged_digest_is_rejected(self, sweep_body):
        doc = wrap_catalog(sweep_body)
        doc["digest"] = "0" * 64
        with pytest.raises(CatalogError, match="digest mismatch"):
            unwrap_catalog(doc)

    def test_version_skew_is_rejected(self, sweep_body):
        doc = wrap_catalog(sweep_body)
        doc["version"] = 99
        with pytest.raises(CatalogError, match="version"):
            unwrap_catalog(doc)

    def test_non_catalog_document_is_rejected(self):
        with pytest.raises(CatalogError, match="not a catalog"):
            unwrap_catalog({"kind": "result", "answer": 42})

    def test_measurements_do_not_change_the_digest(self, sweep_body):
        bare = wrap_catalog(sweep_body)
        measured = wrap_catalog(sweep_body,
                                measurements={"entries": {"dot/eta=0": 1.0}})
        assert bare["digest"] == measured["digest"]


class TestArtifactBytes:
    def test_canonical_bytes_round_trip(self, sweep_body):
        data = canonical_json(sweep_body).encode("utf-8")
        assert load_catalog_bytes(data) == sweep_body

    def test_non_canonical_bytes_are_rejected(self, sweep_body):
        pretty = json.dumps(sweep_body, indent=2).encode("utf-8")
        with pytest.raises(CatalogError, match="canonical"):
            load_catalog_bytes(pretty)

    def test_garbage_is_rejected(self):
        with pytest.raises(CatalogError, match="unparseable"):
            load_catalog_bytes(b"{nope")
        with pytest.raises(CatalogError, match="not a catalog"):
            load_catalog_bytes(b'{"kind": "result"}')


class TestQuery:
    def test_closed_world_unknown_kernel(self, sweep_body):
        with pytest.raises(CatalogError, match="not in catalog"):
            query_catalog(sweep_body, kernel="cos")

    def test_error_filter(self, sweep_body):
        ids = [e["id"] for e in query_catalog(
            sweep_body, kernel="dot", max_error=4.0, frontier_only=True)]
        assert ids == ["dot/eta=0", "dot/eta=10"]

    def test_fastest_under_picks_the_last_fitting_point(self, sweep_body):
        assert fastest_under(sweep_body, "dot", 4.0)["id"] == "dot/eta=10"
        assert fastest_under(sweep_body, "dot", 1e9)["id"] == "dot/eta=100"
        assert fastest_under(sweep_body, "dot", 0.0)["id"] == "dot/eta=0"

    def test_fastest_under_unsatisfiable(self, sweep_body):
        body = dict(sweep_body)
        # Error floors are 0 here, so only an impossible negative budget
        # can fail; check the error path with a raised floor instead.
        for entry in body["kernels"]["dot"]["entries"]:
            if dec_float(entry["error_ulps"]) == 0.0:
                entry["on_frontier"] = False
        with pytest.raises(CatalogError, match="no certified"):
            fastest_under(body, "dot", 0.5)

    def test_summary_counts(self, sweep_body):
        summary = catalog_summary(sweep_body)
        assert summary["digest"] == catalog_digest(sweep_body)
        assert summary["kernels"]["dot"]["entries"] == 5
        assert summary["kernels"]["dot"]["frontier"] == 3
        assert dec_float(
            summary["kernels"]["dot"]["max_speedup"]) == 5.0
        assert summary["skipped"] == 0
