"""Frontier assembly: dominance marking, soundness gates, identity."""

import math

import pytest

from repro.catalog.frontier import (
    CatalogError,
    assemble_catalog,
    catalog_digest,
    mark_frontier,
)
from repro.core.serialize import canonical_json, dec_float

from tests.catalog.conftest import (
    bnb_doc,
    make_cells,
    select_doc,
    uf_doc,
)


def _entry(eid, error, latency):
    return {"id": eid, "error_ulps": error, "latency": latency}


class TestMarkFrontier:
    def test_strictly_improving_staircase(self):
        entries = [_entry("a", 0.0, 100), _entry("b", 2.0, 50),
                   _entry("c", 8.0, 10)]
        mark_frontier(entries)
        assert all(e["on_frontier"] for e in entries)

    def test_dominated_entry_records_its_dominator(self):
        entries = [_entry("fast", 1.0, 10), _entry("worse", 2.0, 20)]
        mark_frontier(entries)
        by_id = {e["id"]: e for e in entries}
        assert by_id["fast"]["on_frontier"]
        assert not by_id["worse"]["on_frontier"]
        assert by_id["worse"]["dominated_by"] == "fast"

    def test_equal_point_keeps_first_by_id(self):
        entries = [_entry("b", 1.0, 10), _entry("a", 1.0, 10)]
        mark_frontier(entries)
        assert [e["id"] for e in entries] == ["a", "b"]
        assert entries[0]["on_frontier"]
        assert entries[1]["dominated_by"] == "a"

    def test_frontier_monotone_after_marking(self):
        entries = [_entry(f"e{i}", err, lat) for i, (err, lat) in
                   enumerate([(3.0, 40), (0.0, 90), (1.0, 90),
                              (5.0, 35), (2.0, 60)])]
        mark_frontier(entries)
        frontier = [e for e in entries if e["on_frontier"]]
        errors = [dec_float(e["error_ulps"]) for e in frontier]
        latencies = [e["latency"] for e in frontier]
        assert errors == sorted(errors)
        assert latencies == sorted(latencies, reverse=True)
        assert len(set(latencies)) == len(latencies)


class TestAssemble:
    def test_target_baseline_always_present(self, sweep_body):
        for name in ("dot", "add"):
            ids = [e["id"] for e in sweep_body["kernels"][name]["entries"]]
            assert f"{name}/target" in ids

    def test_sweep_frontier(self, sweep_body):
        entries = sweep_body["kernels"]["dot"]["entries"]
        frontier = [e["id"] for e in entries if e["on_frontier"]]
        assert frontier == ["dot/eta=0", "dot/eta=10", "dot/eta=100"]
        by_id = {e["id"]: e for e in entries}
        # eta=5 loses to the proved eta=0 rewrite on both axes; the
        # target loses to it on latency at equal error.
        assert by_id["dot/eta=5"]["dominated_by"] == "dot/eta=0"
        assert by_id["dot/target"]["dominated_by"] == "dot/eta=0"

    def test_speedup_is_relative_to_target(self, sweep_body):
        by_id = {e["id"]: e
                 for e in sweep_body["kernels"]["dot"]["entries"]}
        assert dec_float(by_id["dot/eta=100"]["speedup"]) == 5.0
        assert dec_float(by_id["dot/target"]["speedup"]) == 1.0

    def test_unproved_and_unbounded_cells_are_skipped(self):
        cells, docs = make_cells(
            ("dot", 0.0, select_doc("d0", 80), uf_doc("d0", proved=False)),
            ("dot", 9.0, select_doc("d9", 40),
             bnb_doc("d9", math.inf)),
        )
        body = assemble_catalog(cells, docs)
        reasons = {s["id"]: s["reason"] for s in body["skipped"]}
        assert reasons == {
            "dot/eta=0": "uf equivalence not proved",
            "dot/eta=9": "no finite certified bound",
        }
        # Only the target baseline survives for the kernel.
        assert [e["id"] for e in body["kernels"]["dot"]["entries"]] == \
            ["dot/target"]

    def test_rewrite_digest_mismatch_is_rejected(self):
        # A verify result derived against some *other* rewrite must not
        # lend its bound to this select's program.
        cells, docs = make_cells(
            ("dot", 10.0, select_doc("actual", 40),
             bnb_doc("different", 4.0)))
        with pytest.raises(CatalogError, match="different rewrite"):
            assemble_catalog(cells, docs)

    def test_target_latency_disagreement_is_rejected(self):
        cells, docs = make_cells(
            ("dot", 0.0, select_doc("d0", 80, target_latency=100),
             uf_doc("d0")),
            ("dot", 10.0, select_doc("d10", 50, target_latency=90),
             bnb_doc("d10", 4.0)))
        with pytest.raises(CatalogError, match="target latency"):
            assemble_catalog(cells, docs)

    def test_missing_documents_are_rejected(self):
        cells, docs = make_cells(
            ("dot", 0.0, select_doc("d0", 80), uf_doc("d0")))
        with pytest.raises(CatalogError, match="missing verify"):
            assemble_catalog(cells, {cells[0][2]: docs[cells[0][2]]})
        with pytest.raises(CatalogError, match="missing select"):
            assemble_catalog(cells, {cells[0][3]: docs[cells[0][3]]})

    def test_unknown_engine_is_skipped_not_trusted(self):
        cells, docs = make_cells(
            ("dot", 3.0, select_doc("d3", 40),
             {"engine": "oracle", "bound_ulps": 0.0,
              "rewrite_digest": None}))
        body = assemble_catalog(cells, docs)
        assert body["kernels"]["dot"]["entries"][0]["id"] == "dot/target"
        assert "oracle" in body["skipped"][0]["reason"]


class TestIdentity:
    def test_same_inputs_same_bytes(self, sweep_body):
        cells, docs = make_cells(
            ("dot", 0.0, select_doc("d0", 80), uf_doc("d0")),
            ("dot", 10.0, select_doc("d10", 50), bnb_doc("d10", 4.0)))
        one = assemble_catalog(cells, docs)
        two = assemble_catalog(list(cells), dict(docs))
        assert canonical_json(one) == canonical_json(two)
        assert catalog_digest(one) == catalog_digest(two)

    def test_digest_tracks_content(self):
        cells, docs = make_cells(
            ("dot", 10.0, select_doc("d10", 50), bnb_doc("d10", 4.0)))
        base = catalog_digest(assemble_catalog(cells, docs))
        docs[cells[0][2]] = select_doc("d10", 49)
        docs[cells[0][3]] = bnb_doc("d10", 4.0)
        assert catalog_digest(assemble_catalog(cells, docs)) != base
