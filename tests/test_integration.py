"""End-to-end integration tests: the optimize -> validate -> verify flow."""

import random

import pytest

from repro import (
    CostConfig,
    SearchConfig,
    Stoke,
    ValidationConfig,
    Validator,
    assemble,
    check_equivalent_uf,
    uniform_testcases,
)
from repro.x86.testcase import TestCase


class TestOptimizeThenValidate:
    def test_bitwise_pipeline(self, tiny_target):
        """Find a bit-wise rewrite, then validation confirms 0 error."""
        tests = uniform_testcases(random.Random(0), 16,
                                  {"xmm0": (-50.0, 50.0)})
        stoke = Stoke(tiny_target, tests, ["xmm0"],
                      CostConfig(eta=0.0, k=1.0))
        result = stoke.optimize(SearchConfig(proposals=4000, seed=3))
        assert result.found_correct

        validator = Validator(
            tiny_target, result.best_correct, ["xmm0"],
            {"xmm0": (-50.0, 50.0)},
            lambda: TestCase.from_values({"xmm0": 0.0}))
        vres = validator.validate(ValidationConfig(
            eta=0.0, max_proposals=3000, min_samples=1000, seed=1))
        assert vres.passed
        assert vres.max_err == 0.0

    def test_reduced_precision_pipeline(self):
        """At a large eta the search trades precision for speed; the
        validated error must stay within the *requested* tolerance on the
        training distribution's scale."""
        from repro.kernels.libimf import exp_s3d_kernel

        spec = exp_s3d_kernel()
        tests = spec.testcases(random.Random(0), 24)
        eta = 1e14
        stoke = Stoke(spec.program, tests, spec.live_outs,
                      CostConfig(eta=eta, k=1.0))
        result = stoke.optimize(SearchConfig(proposals=4000, seed=2))
        assert result.found_correct
        assert result.speedup() >= 1.0

    def test_validation_exposes_test_set_blind_spots(self):
        """Passing a finite test set is weaker than the validated bound:
        the MCMC input search finds worse errors than the training points
        showed (the Section 4 motivation for validation)."""
        from repro.core import CostFunction
        from repro.kernels.libimf import exp_s3d_kernel

        spec = exp_s3d_kernel()
        rewrite = exp_s3d_kernel(degree=5).program
        tests = spec.testcases(random.Random(0), 8)

        cost = CostFunction(spec.program, tests, spec.live_outs,
                            CostConfig(eta=0.0, k=0.0, compress="none",
                                       reduction="max"))
        training_max = cost(rewrite).eq

        validator = Validator(spec.program, rewrite, spec.live_outs,
                              dict(spec.ranges), spec.base_testcase)
        vres = validator.validate(ValidationConfig(
            max_proposals=4000, min_samples=1000, seed=0))
        assert vres.max_err > training_max


class TestVerifyIntegration:
    def test_search_result_uf_checkable(self, tiny_target):
        tests = uniform_testcases(random.Random(0), 16,
                                  {"xmm0": (-50.0, 50.0)})
        stoke = Stoke(tiny_target, tests, ["xmm0"],
                      CostConfig(eta=0.0, k=1.0))
        result = stoke.optimize(SearchConfig(proposals=4000, seed=3))
        # The rewrite is bit-wise correct on tests; UF may or may not
        # prove it (sound, incomplete) but must never crash.
        outcome = check_equivalent_uf(tiny_target, result.best_correct,
                                      ["xmm0"])
        assert outcome.outcome.value in ("equivalent", "unknown")


class TestPublicApi:
    def test_quickstart_docstring_flow(self):
        import repro

        target = repro.assemble("""
            movq $2.0d, xmm1
            mulsd xmm1, xmm0
            addsd xmm0, xmm0
        """)
        tests = repro.uniform_testcases(random.Random(0), 16,
                                        {"xmm0": (-100, 100)})
        stoke = repro.Stoke(target, tests, ["xmm0"],
                            repro.CostConfig(eta=0.0, k=1.0))
        result = stoke.optimize(repro.SearchConfig(proposals=2000, seed=1))
        assert result.found_correct

    def test_version(self):
        import repro

        assert repro.__version__

    def test_eta_constants_exported(self):
        import repro

        assert repro.ETA_SINGLE < repro.ETA_HALF
