"""Tests for MCMC validation (Section 4) and the input proposers."""

import math
import random

import pytest

from repro.fp.ieee754 import bits_to_double, double_to_bits
from repro.x86.assembler import assemble
from repro.x86.testcase import TestCase

from repro.validation.proposals import InputRange, TestCaseProposer
from repro.validation.strategies import (
    ValidationHill,
    ValidationMcmc,
    ValidationRandom,
    make_validation_strategy,
)
from repro.validation.validator import (
    SIGNAL_ERR,
    ValidationConfig,
    Validator,
)


def base_tc():
    return TestCase.from_values({"xmm0": 0.0})


class TestProposer:
    def test_proposer_class_not_collected_by_pytest(self):
        """TestCaseProposer is named Test* but is library code; the
        __test__ opt-out keeps every pytest run collection-warning-free."""
        assert TestCaseProposer.__test__ is False

    def test_initial_within_range(self):
        proposer = TestCaseProposer({"xmm0": (-2.0, 3.0)})
        rng = random.Random(0)
        for _ in range(50):
            tc = proposer.initial(rng, base_tc())
            value = bits_to_double(tc.value_of("xmm0"))
            assert -2.0 <= value <= 3.0

    def test_propose_clamps_by_keeping_old_value(self):
        # Equation 16: out-of-range components keep their old value.
        proposer = TestCaseProposer({"xmm0": (0.0, 1.0)},
                                    sigma_fraction=100.0)
        rng = random.Random(1)
        current = base_tc().replace("xmm0", double_to_bits(0.5))
        for _ in range(100):
            proposal = proposer.propose(rng, current)
            value = bits_to_double(proposal.value_of("xmm0"))
            assert 0.0 <= value <= 1.0

    def test_propose_moves_locally(self):
        proposer = TestCaseProposer({"xmm0": (0.0, 1.0)},
                                    sigma_fraction=0.01)
        rng = random.Random(2)
        current = base_tc().replace("xmm0", double_to_bits(0.5))
        displacements = []
        for _ in range(200):
            proposal = proposer.propose(rng, current)
            displacements.append(
                bits_to_double(proposal.value_of("xmm0")) - 0.5)
        mean = sum(displacements) / len(displacements)
        assert abs(mean) < 0.005  # symmetric around the current point

    def test_uniform_redraw(self):
        proposer = TestCaseProposer({"xmm0": (0.0, 1.0)})
        rng = random.Random(3)
        current = base_tc().replace("xmm0", double_to_bits(0.5))
        values = {bits_to_double(
            proposer.propose_uniform(rng, current).value_of("xmm0"))
            for _ in range(50)}
        assert len(values) == 50

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            TestCaseProposer({"xmm0": (1.0, 1.0)})

    def test_input_range(self):
        r = InputRange(-1.0, 3.0)
        assert r.width == 4.0
        assert r.contains(0.0)
        assert not r.contains(3.5)


class TestValidator:
    def make_validator(self, target_asm, rewrite_asm, ranges=None):
        return Validator(
            assemble(target_asm), assemble(rewrite_asm), ["xmm0"],
            ranges or {"xmm0": (-10.0, 10.0)}, base_tc,
        )

    def test_identical_programs_validate_clean(self):
        validator = self.make_validator("addsd xmm0, xmm0",
                                        "addsd xmm0, xmm0")
        result = validator.validate(ValidationConfig(
            eta=0.0, max_proposals=2000, min_samples=500, seed=0))
        assert result.max_err == 0.0
        assert result.passed
        assert result.converged

    def test_finds_error_peak(self):
        # Rewrite multiplies by a perturbed constant: error grows with |x|
        # and is maximized at the range edges.
        near2 = math.nextafter(2.0, 3.0)
        validator = self.make_validator(
            "addsd xmm0, xmm0",
            f"movq $0x{double_to_bits(near2):x}, xmm1\nmulsd xmm1, xmm0",
        )
        result = validator.validate(ValidationConfig(
            eta=0.0, max_proposals=4000, min_samples=1000, seed=1))
        assert result.max_err > 0.0
        assert not result.passed
        # The argmax should be near a range edge where the error peaks.
        arg = abs(bits_to_double(result.argmax.value_of("xmm0")))
        assert arg > 5.0

    def test_eta_pass(self):
        near2 = math.nextafter(2.0, 3.0)
        validator = self.make_validator(
            "addsd xmm0, xmm0",
            f"movq $0x{double_to_bits(near2):x}, xmm1\nmulsd xmm1, xmm0",
        )
        result = validator.validate(ValidationConfig(
            eta=1e6, max_proposals=3000, min_samples=1000, seed=2))
        assert result.passed  # a 1-ULP constant error stays tiny

    def test_divergent_signal_is_caught(self):
        validator = self.make_validator("addsd xmm0, xmm0",
                                        "movsd (rax), xmm0")
        assert validator.err(base_tc()) == SIGNAL_ERR

    def test_trace_is_monotone(self):
        validator = self.make_validator("addsd xmm0, xmm0",
                                        "mulsd xmm0, xmm0")
        result = validator.validate(ValidationConfig(
            max_proposals=1500, min_samples=500, seed=3))
        errs = [e for _, e in result.trace]
        assert all(a <= b for a, b in zip(errs, errs[1:]))

    def test_deterministic_given_seed(self):
        args = ("addsd xmm0, xmm0", "mulsd xmm0, xmm0")
        config = ValidationConfig(max_proposals=800, min_samples=400, seed=7)
        r1 = self.make_validator(*args).validate(config)
        r2 = self.make_validator(*args).validate(config)
        assert r1.max_err == r2.max_err
        assert r1.samples == r2.samples


class TestValidationStrategies:
    def test_factory(self):
        assert isinstance(make_validation_strategy("mcmc"), ValidationMcmc)
        assert isinstance(make_validation_strategy("hill"), ValidationHill)
        assert make_validation_strategy("rand").uniform_proposals
        with pytest.raises(ValueError):
            make_validation_strategy("nope")

    def test_hill_never_descends(self):
        strategy = ValidationHill()
        rng = random.Random(0)
        assert strategy.accept(rng, 5.0, 5.0, 0, 10)
        assert not strategy.accept(rng, 5.0, 4.9, 0, 10)

    def test_mcmc_always_ascends(self):
        strategy = ValidationMcmc()
        rng = random.Random(0)
        assert strategy.accept(rng, 1.0, 100.0, 0, 10)

    def test_mcmc_descends_proportionally(self):
        strategy = ValidationMcmc()
        rng = random.Random(0)
        # ratio (1+1)/(99+1) = 0.02
        accepts = sum(strategy.accept(rng, 99.0, 1.0, 0, 10)
                      for _ in range(5000))
        assert abs(accepts / 5000 - 0.02) < 0.01

    def test_random_accepts_all(self):
        strategy = ValidationRandom()
        assert strategy.accept(random.Random(0), 1e9, 0.0, 0, 10)

    def test_strategies_drive_validator(self):
        validator = Validator(
            assemble("addsd xmm0, xmm0"), assemble("mulsd xmm0, xmm0"),
            ["xmm0"], {"xmm0": (-10.0, 10.0)}, base_tc,
        )
        for name in ("rand", "hill", "anneal", "mcmc"):
            result = validator.validate(
                ValidationConfig(max_proposals=500, min_samples=501, seed=1),
                strategy=make_validation_strategy(name))
            assert result.max_err > 0.0
