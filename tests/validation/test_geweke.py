"""Tests for the Geweke convergence diagnostic (Section 5.3)."""

import math
import random

import numpy as np
import pytest

from repro.validation.geweke import geweke_z, is_converged, spectral_density_at_zero


class TestSpectralDensity:
    def test_white_noise_matches_variance(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(20_000)
        s0 = spectral_density_at_zero(x)
        assert s0 == pytest.approx(1.0, rel=0.15)

    def test_positively_correlated_chain_is_larger(self):
        rng = np.random.default_rng(1)
        noise = rng.standard_normal(5000)
        ar = np.zeros(5000)
        for i in range(1, 5000):
            ar[i] = 0.9 * ar[i - 1] + noise[i]
        assert spectral_density_at_zero(ar) > np.var(ar)

    def test_constant_chain(self):
        assert spectral_density_at_zero([3.0] * 100) == 0.0

    def test_short_chain(self):
        assert spectral_density_at_zero([1.0]) == 0.0


class TestGewekeZ:
    def test_stationary_chain_small_z(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(10_000)
        assert abs(geweke_z(x)) < 3.0

    def test_trending_chain_large_z(self):
        x = np.linspace(0.0, 100.0, 5000) + \
            np.random.default_rng(3).standard_normal(5000)
        assert abs(geweke_z(x)) > 10.0

    def test_constant_chain_is_zero(self):
        assert geweke_z([5.0] * 100) == 0.0

    def test_step_change_detected(self):
        x = [0.0] * 500 + [10.0] * 500
        assert abs(geweke_z(x)) == math.inf or abs(geweke_z(x)) > 5.0

    def test_requires_min_samples(self):
        with pytest.raises(ValueError):
            geweke_z([1.0] * 5)

    def test_window_validation(self):
        x = list(range(100))
        with pytest.raises(ValueError):
            geweke_z(x, first=0.6, last=0.6)
        with pytest.raises(ValueError):
            geweke_z(x, first=0.0)


class TestIsConverged:
    def test_stationary_converges(self):
        rng = np.random.default_rng(4)
        assert is_converged(rng.standard_normal(5000), z_threshold=3.0)

    def test_trending_does_not(self):
        x = np.linspace(0, 50, 2000)
        assert not is_converged(x)
