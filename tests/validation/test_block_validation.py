"""Tests for speculative block evaluation in the validator.

``err_block`` must be bit-identical to per-proposal ``err``; for
strategies whose proposals are drawn independently of the chain state
(``uniform_proposals``) whole validation runs must be bit-identical
between scalar and block mode, because the acceptance step consumes no
randomness and an accept invalidates nothing.
"""

import random
from dataclasses import replace

import pytest

from repro.fp.ieee754 import double_to_bits
from repro.x86.assembler import assemble
from repro.x86.testcase import TestCase

from repro.validation.proposals import TestCaseProposer
from repro.validation.strategies import make_validation_strategy
from repro.validation.validator import (SIGNAL_ERR, ValidationConfig,
                                        Validator)

from tests.conftest import base_testcase

BACKENDS = ("jit", "emulator")
RANGES = {"xmm0": (-10.0, 10.0)}


def base_tc():
    return TestCase.from_values({"xmm0": 0.0})


def make_validator(backend="jit", target="addsd xmm0, xmm0",
                   rewrite="mulsd xmm0, xmm0", base=base_tc):
    return Validator(assemble(target), assemble(rewrite), ["xmm0"],
                     RANGES, base, backend=backend)


def drawn_proposals(count, seed=0):
    """A realistic chain of proposals from the validation proposer."""
    proposer = TestCaseProposer(RANGES)
    rng = random.Random(seed)
    current = proposer.initial(rng, base_tc())
    out = []
    for _ in range(count):
        current = proposer.propose(rng, current)
        out.append(current)
    return out


class TestErrBlock:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_block_matches_scalar_err(self, backend):
        validator = make_validator(backend=backend)
        proposals = drawn_proposals(50)
        block = validator.err_block(proposals)
        assert block == [validator.err(t) for t in proposals]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pool_reuse_across_blocks(self, backend):
        # The proposal-state pool is reset in place between blocks; a
        # second block must not see residue from the first.
        validator = make_validator(backend=backend)
        first = drawn_proposals(20, seed=1)
        second = drawn_proposals(20, seed=2)
        validator.err_block(first)
        assert validator.err_block(second) == \
            [validator.err(t) for t in second]

    def test_rewrite_signal_divergence(self):
        validator = make_validator(rewrite="movsd (rax), xmm0")
        proposals = drawn_proposals(8)
        assert validator.err_block(proposals) == [SIGNAL_ERR] * 8

    def test_matching_target_and_rewrite_signals(self):
        # Both programs fault identically: not a divergence (err 0).
        validator = make_validator(target="movsd (rax), xmm0",
                                   rewrite="movsd (rax), xmm0")
        proposals = drawn_proposals(8)
        assert validator.err_block(proposals) == [0.0] * 8

    def test_foreign_segments_take_generic_path(self):
        # Proposals derived from a different base test case carry their
        # own segment objects; the pristine pool images don't apply and
        # the block must route through the tests' own pooled states.
        tc_a = base_testcase(0)
        validator = Validator(assemble("addsd 8(rbx), xmm0"),
                              assemble("addsd 8(rbx), xmm0"), ["xmm0"],
                              RANGES, lambda: tc_a)
        props_a = [tc_a.replace("xmm0", double_to_bits(float(v)))
                   for v in range(1, 7)]
        assert validator.err_block(props_a) == \
            [validator.err(t) for t in props_a]
        tc_b = base_testcase(0)  # fresh segments => generic path
        props_b = [tc_b.replace("xmm0", double_to_bits(float(v)))
                   for v in range(1, 7)]
        assert validator.err_block(props_b) == \
            [validator.err(t) for t in props_b]


class TestBlockChainEquivalence:
    CONFIG = ValidationConfig(max_proposals=1200, min_samples=400,
                              check_interval=200, seed=5, max_block=1)

    def test_rand_block_run_is_bit_identical_to_scalar(self):
        # ValidationRandom draws proposals independently of the chain
        # state and its accept consumes no randomness, so block and
        # scalar mode see the very same rng stream: every result field
        # must match exactly.
        validator = make_validator()
        scalar = validator.validate(self.CONFIG,
                                    make_validation_strategy("rand"))
        block = validator.validate(replace(self.CONFIG, max_block=8),
                                   make_validation_strategy("rand"))
        assert block.max_err == scalar.max_err
        assert block.samples == scalar.samples
        assert block.converged == scalar.converged
        assert block.trace == scalar.trace
        assert block.z_scores == scalar.z_scores
        assert block.argmax.value_of("xmm0") == \
            scalar.argmax.value_of("xmm0")
        # Scalar mode never speculates; block mode can only waste the
        # tail of its final block (the Geweke break), never a whole one.
        assert scalar.evaluations == scalar.samples
        assert scalar.wasted == 0
        assert block.wasted == block.evaluations - block.samples
        assert block.wasted < 8

    def test_mcmc_block_mode_is_deterministic(self):
        config = replace(self.CONFIG, max_block=16)
        strategy = make_validation_strategy("mcmc")
        first = make_validator().validate(config, strategy)
        second = make_validator().validate(config, strategy)
        assert first.max_err == second.max_err
        assert first.samples == second.samples
        assert first.evaluations == second.evaluations

    def test_mcmc_block_accounting(self):
        result = make_validator().validate(
            replace(self.CONFIG, max_block=16),
            make_validation_strategy("mcmc"))
        assert result.max_err > 0.0
        assert result.evaluations >= result.samples
        assert result.wasted == result.evaluations - result.samples
        assert result.wasted >= 0

    def test_max_block_one_disables_speculation(self):
        result = make_validator().validate(
            self.CONFIG, make_validation_strategy("mcmc"))
        assert result.evaluations == result.samples
        assert result.wasted == 0

    def test_default_speculates_only_for_uniform_strategies(self):
        # max_block=None (the default): chain strategies must realize
        # exactly the scalar path — a default block size would silently
        # change every existing caller's sampled chain — while uniform
        # strategies batch freely because blocking cannot change their
        # stream.
        auto = replace(self.CONFIG, max_block=None)
        mcmc_auto = make_validator().validate(
            auto, make_validation_strategy("mcmc"))
        mcmc_scalar = make_validator().validate(
            self.CONFIG, make_validation_strategy("mcmc"))
        assert mcmc_auto.evaluations == mcmc_auto.samples  # no speculation
        assert mcmc_auto.max_err == mcmc_scalar.max_err
        assert mcmc_auto.trace == mcmc_scalar.trace

        rand_auto = make_validator().validate(
            auto, make_validation_strategy("rand"))
        rand_scalar = make_validator().validate(
            self.CONFIG, make_validation_strategy("rand"))
        assert rand_auto.max_err == rand_scalar.max_err
        assert rand_auto.trace == rand_scalar.trace
        # ... but rand actually used blocks (fewer executor calls show up
        # as wasted tail draws only when the Geweke break lands mid-block;
        # the direct signal is evaluations filled to the block boundary).
        assert rand_auto.evaluations >= rand_auto.samples
