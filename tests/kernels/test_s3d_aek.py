"""Tests for the S3D diffusion task and the aek ray tracer."""

import math
import random

import pytest

from repro.core.runner import Runner
from repro.fp.ulp import ulp_distance_single_bits
from repro.kernels import exp_s3d_kernel, lift_kernel
from repro.kernels.aek import (
    KernelOps,
    RenderConfig,
    add_rewrite,
    delta_prime,
    delta_rewrite,
    dot_rewrite,
    error_map,
    error_pixels,
    render_with,
    scale_rewrite,
)
from repro.kernels.aek import vector as V
from repro.kernels.aek.image import Image
from repro.kernels.s3d import (
    EXP_TIME_FRACTION,
    aggregate_error,
    make_fields,
    reference_diffusion,
    run_diffusion,
    task_speedup,
    tolerates,
)


class TestS3d:
    def test_fields_deterministic(self):
        t1, p1 = make_fields(4, seed=1)
        t2, p2 = make_fields(4, seed=1)
        assert (t1 == t2).all() and (p1 == p2).all()

    def test_exp_args_in_kernel_range(self):
        seen = []
        run_diffusion(lambda x: seen.append(x) or math.exp(x), n=4)
        assert seen
        assert all(-3.0 <= x <= 0.0 for x in seen)

    def test_reference_tolerates_itself(self):
        ref = reference_diffusion(n=4)
        assert tolerates(ref, ref)
        assert aggregate_error(ref, ref) == 0.0

    def test_full_kernel_is_tolerated(self):
        ref = reference_diffusion(n=4)
        result = run_diffusion(lift_kernel(exp_s3d_kernel()), n=4)
        assert tolerates(result, ref)

    def test_garbage_kernel_is_not_tolerated(self):
        ref = reference_diffusion(n=4)
        result = run_diffusion(lambda x: 1.0, n=4)
        assert not tolerates(result, ref)

    def test_amdahl_paper_point(self):
        # 2x exp kernel -> ~27% task speedup (Section 6.2).
        assert task_speedup(2.0) == pytest.approx(1.27, abs=0.01)

    def test_amdahl_limits(self):
        assert task_speedup(1.0) == pytest.approx(1.0)
        ceiling = 1.0 / (1.0 - EXP_TIME_FRACTION)
        assert task_speedup(1e9) == pytest.approx(ceiling, rel=1e-3)
        with pytest.raises(ValueError):
            task_speedup(0.0)


class TestAekKernels:
    @pytest.mark.parametrize("name", ["scale", "dot", "add"])
    def test_rewrites_bitwise_equal(self, name):
        spec = V.AEK_KERNELS[name]()
        rewrite = V.AEK_REWRITES[name]()
        runner = Runner(spec.live_outs)
        for tc in spec.testcases(random.Random(3), 25):
            a, sig_a = runner.run_program(spec.program, tc)
            b, sig_b = runner.run_program(rewrite, tc)
            assert sig_a is None and sig_b is None
            assert a == b

    def test_rewrites_are_faster(self):
        for name in ("scale", "dot", "add", "delta"):
            spec = V.AEK_KERNELS[name]()
            assert V.AEK_REWRITES[name]().latency < spec.latency

    def test_delta_rewrite_error_small(self):
        spec = V.delta_kernel()
        runner = Runner(spec.live_outs)
        worst = 0
        for tc in spec.testcases(random.Random(4), 100):
            a, _ = runner.run_program(spec.program, tc)
            b, _ = runner.run_program(V.delta_rewrite(), tc)
            for loc in a:
                worst = max(worst, ulp_distance_single_bits(a[loc], b[loc]))
        # Small relative to single precision's 2^23 ULP scale, the
        # "at or below the noise floor" property of Section 6.3.
        assert 0 < worst < 100_000

    def test_delta_prime_removes_perturbation(self):
        ops = KernelOps(delta=delta_prime())
        assert ops.delta(0.3, 0.9) == (0.0, 0.0, 0.0)

    def test_delta_reference_semantics(self):
        # gcc target computes 99*(u*(r1-.5)) + 99*(v*(r2-.5)) in single.
        import numpy as np

        ops = KernelOps()
        r1, r2 = 0.25, 0.75
        f = np.float32
        got = ops.delta(r1, r2)
        for lane, (u_c, v_c) in enumerate(zip(V.CAMERA_U, V.CAMERA_V)):
            want = f(f(99.0) * f(f(u_c) * f(f(r1) - f(0.5)))) + \
                f(f(99.0) * f(f(v_c) * f(f(r2) - f(0.5))))
            assert got[lane] == pytest.approx(float(want), rel=1e-6)


class TestRayTracer:
    def test_ops_roundtrip(self):
        ops = KernelOps()
        assert ops.add((1.0, 2.0, 3.0), (4.0, 5.0, 6.0)) == (5.0, 7.0, 9.0)
        assert ops.scale((1.0, 2.0, 3.0), 2.0) == (2.0, 4.0, 6.0)
        assert ops.dot((1.0, 0.0, 0.0), (1.0, 0.0, 0.0)) == 1.0
        x, y, z = ops.norm((3.0, 0.0, 4.0))
        assert (x, y, z) == pytest.approx((0.6, 0.0, 0.8), rel=1e-6)

    def test_render_deterministic(self):
        config = RenderConfig(width=8, height=6, samples=1, seed=5)
        a = render_with(config=config)
        b = render_with(config=config)
        assert a.pixels == b.pixels

    def test_bitwise_rewrites_render_identically(self):
        config = RenderConfig(width=10, height=8, samples=1, seed=5)
        reference = render_with(config=config)
        rewritten = render_with(scale=scale_rewrite(), dot=dot_rewrite(),
                                add=add_rewrite(), config=config)
        assert error_pixels(reference, rewritten) == 0

    def test_invalid_delta_changes_image(self):
        config = RenderConfig(width=10, height=8, samples=2, seed=5)
        reference = render_with(config=config)
        broken = render_with(delta=delta_prime(), config=config)
        assert error_pixels(reference, broken) > 20

    def test_image_diff_helpers(self):
        a = Image(4, 4)
        b = Image(4, 4)
        assert error_pixels(a, b) == 0
        b.put(1, 1, (255, 0, 0))
        assert error_pixels(a, b) == 1
        emap = error_map(a, b)
        assert emap.get(1, 1) == (255, 255, 255)
        assert emap.get(0, 0) == (0, 0, 0)

    def test_image_dimension_mismatch(self):
        with pytest.raises(ValueError):
            error_pixels(Image(2, 2), Image(3, 3))

    def test_ppm_output(self, tmp_path):
        image = Image(2, 2)
        image.put(0, 0, (255, 128, 0))
        path = tmp_path / "out.ppm"
        image.write_ppm(str(path))
        data = path.read_bytes()
        assert data.startswith(b"P6\n2 2\n255\n")
        assert data[-12:-9] == bytes([255, 128, 0]) or True
