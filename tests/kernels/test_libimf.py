"""Tests for the libimf-style kernels and the polynomial machinery."""

import math
import random

import numpy as np
import pytest

from repro.fp.ulp import ulp_distance
from repro.x86.assembler import assemble
from repro.x86.jit import compile_program
from repro.x86.testcase import TestCase

from repro.kernels.libimf import (
    LIBIMF_KERNELS,
    exp_kernel,
    exp_s3d_kernel,
    kernel_by_name,
    log_kernel,
    sin_kernel,
)
from repro.kernels.lift import KernelSignalled, LiftedKernel, lift_kernel
from repro.kernels.polynomial import (
    chebyshev_fit,
    horner,
    horner_asm,
    max_error_ulps,
)


class TestPolynomial:
    def test_chebyshev_interpolates(self):
        coeffs = chebyshev_fit(math.exp, -1.0, 1.0, 10)
        for x in np.linspace(-1, 1, 50):
            assert horner(coeffs, float(x)) == pytest.approx(math.exp(x),
                                                             rel=1e-9)

    def test_degree_improves_accuracy(self):
        lo_deg = chebyshev_fit(math.sin, 0.0, 1.5, 3)
        hi_deg = chebyshev_fit(math.sin, 0.0, 1.5, 9)
        def err(c):
            return max(abs(horner(c, x) - math.sin(x))
                       for x in np.linspace(0, 1.5, 100))
        assert err(hi_deg) < err(lo_deg) / 100

    def test_horner_matches_numpy(self):
        coeffs = [1.0, -2.0, 0.5, 3.0]
        for x in (-1.5, 0.0, 2.25):
            assert horner(coeffs, x) == pytest.approx(
                float(np.polynomial.polynomial.polyval(x, coeffs)))

    def test_horner_asm_executes_to_horner(self):
        coeffs = [0.5, -1.25, 2.0]
        asm = horner_asm(coeffs, "xmm0", "xmm2", "xmm3")
        program = assemble(asm)
        lifted = LiftedKernel(program, ["xmm0"], ["xmm2"])
        for x in (-2.0, 0.0, 1.5, 3.25):
            assert lifted(x) == horner(coeffs, x)

    def test_horner_asm_structure(self):
        # movq/mulsd/addsd triplets: the structure the search truncates.
        asm = horner_asm([1.0, 2.0, 3.0], "xmm0", "xmm2", "xmm3")
        assert asm.count("mulsd") == 2
        assert asm.count("addsd") == 2
        assert asm.count("movq") == 3

    def test_empty_coeffs_rejected(self):
        with pytest.raises(ValueError):
            horner_asm([], "xmm0", "xmm2", "xmm3")

    def test_max_error_ulps(self):
        assert max_error_ulps(math.sin, math.sin, 0.0, 1.0, 11) == 0.0


ACCURACY_BUDGET_ULPS = {
    # Max ULP error vs libm over the kernel's range, away from the
    # function's zeros (where ULP error intrinsically diverges; the
    # paper's own Figure 4d error curves spike to 1e16+ at sin's zeros).
    "exp": 64,
    "tan": 1024,
}


class TestKernels:
    @pytest.mark.parametrize("name", sorted(LIBIMF_KERNELS))
    def test_runs_over_whole_range(self, name):
        spec = LIBIMF_KERNELS[name]()
        lifted = lift_kernel(spec)
        lo, hi = spec.ranges["xmm0"]
        for x in np.linspace(lo, hi, 101):
            result = lifted(float(x))
            assert math.isfinite(result)

    @pytest.mark.parametrize("name", ["exp", "tan"])
    def test_accuracy_away_from_zeros(self, name):
        spec = LIBIMF_KERNELS[name]()
        lifted = lift_kernel(spec)
        lo, hi = spec.ranges["xmm0"]
        worst = 0
        for x in np.linspace(lo, hi, 301):
            x = float(x)
            got, want = lifted(x), spec.reference(x)
            worst = max(worst, ulp_distance(got, want))
        assert worst <= ACCURACY_BUDGET_ULPS[name]

    def test_sin_relative_accuracy(self):
        spec = sin_kernel()
        lifted = lift_kernel(spec)
        for x in np.linspace(-3.0, 3.0, 101):
            x = float(x)
            want = math.sin(x)
            if abs(want) < 1e-3:
                continue
            assert lifted(x) == pytest.approx(want, rel=1e-12)

    def test_log_accuracy_near_one(self):
        # The pinned constant term keeps log's error bounded at x ~ 1.
        spec = log_kernel()
        lifted = lift_kernel(spec)
        assert abs(lifted(1.0)) < 1e-15
        for x in (0.9, 1.1, 2.0, 0.001, 9.9):
            assert lifted(x) == pytest.approx(math.log(x), rel=1e-9,
                                              abs=1e-13)

    def test_exp_uses_bit_manipulation(self):
        # The mixed fixed/float property that defeats static analyses.
        opcodes = {i.opcode for i in exp_kernel().program.code}
        assert "shl" in opcodes
        assert "cvtsd2si" in opcodes

    def test_log_uses_bit_extraction_and_cmov(self):
        opcodes = {i.opcode for i in log_kernel().program.code}
        assert "shr" in opcodes
        assert "cmovae" in opcodes
        assert "ucomisd" in opcodes

    def test_s3d_exp_is_pure_polynomial(self):
        opcodes = {i.opcode for i in exp_s3d_kernel().program.code}
        assert opcodes <= {"movq", "mulsd", "addsd", "movsd"}

    def test_degree_controls_length(self):
        small = sin_kernel(degree=4)
        large = sin_kernel(degree=12)
        assert small.loc < large.loc

    def test_kernel_by_name(self):
        assert kernel_by_name("sin").name == "sin"
        assert kernel_by_name("exp_s3d").name == "exp_s3d"
        with pytest.raises(ValueError):
            kernel_by_name("cosh")

    def test_testcases_within_ranges(self):
        spec = LIBIMF_KERNELS["log"]()
        from repro.fp.ieee754 import bits_to_double

        for tc in spec.testcases(random.Random(0), 40):
            value = bits_to_double(tc.value_of("xmm0"))
            lo, hi = spec.ranges["xmm0"]
            assert lo <= value <= hi


class TestLift:
    def test_lifted_matches_direct_execution(self):
        spec = sin_kernel()
        lifted = lift_kernel(spec)
        tc = TestCase.from_values({"xmm0": 0.7})
        state = tc.build_state()
        compile_program(spec.program).run(state)
        from repro.fp.ieee754 import bits_to_double

        assert lifted(0.7) == bits_to_double(state.xmm_lo[0])

    def test_wrong_arity_raises(self):
        lifted = lift_kernel(sin_kernel())
        with pytest.raises(TypeError):
            lifted(1.0, 2.0)

    def test_signalling_kernel_raises(self):
        program = assemble("movsd (rax), xmm0")
        lifted = LiftedKernel(program, ["rax"], ["xmm0"])
        with pytest.raises(KernelSignalled):
            lifted(0xDEAD)

    def test_multiple_outputs_tuple(self):
        program = assemble("movsd xmm0, xmm1\naddsd xmm0, xmm1")
        lifted = LiftedKernel(program, ["xmm0"], ["xmm0", "xmm1"])
        assert lifted(3.0) == (3.0, 6.0)
