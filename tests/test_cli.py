"""Tests for the ``python -m repro`` command-line front-end."""

import json

import pytest

from repro.cli import _parse_ranges, _parse_values, main

KERNEL = """
movq $2.0d, xmm1
mulsd xmm1, xmm0
addsd xmm0, xmm0
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "kernel.s"
    path.write_text(KERNEL)
    return str(path)


class TestParsing:
    def test_ranges(self):
        assert _parse_ranges(["xmm0=-1:2.5"]) == {"xmm0": (-1.0, 2.5)}

    def test_ranges_reject_bad(self):
        with pytest.raises(SystemExit):
            _parse_ranges(["xmm0=5"])

    def test_values(self):
        assert _parse_values(["xmm0=2.5", "rax=7"]) == \
            {"xmm0": 2.5, "rax": 7.0}

    def test_values_reject_bad(self):
        with pytest.raises(SystemExit):
            _parse_values(["xmm0"])


class TestCommands:
    def test_run(self, kernel_file, capsys):
        rc = main(["run", kernel_file, "--set", "xmm0=2.5",
                   "--live-out", "xmm0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "10.0" in out

    def test_run_signal(self, tmp_path, capsys):
        path = tmp_path / "fault.s"
        path.write_text("movsd (rax), xmm0\n")
        rc = main(["run", str(path), "--set", "rax=4096",
                   "--live-out", "xmm0"])
        assert rc == 1
        assert "SIGSEGV" in capsys.readouterr().out

    def test_trace(self, kernel_file, capsys):
        rc = main(["trace", kernel_file, "--set", "xmm0=1.0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mulsd" in out and "->" in out

    def test_optimize_and_validate(self, kernel_file, tmp_path, capsys):
        rc = main(["optimize", kernel_file, "--live-out", "xmm0",
                   "--range", "xmm0=-10:10", "--proposals", "2500",
                   "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        rewrite_lines = [line for line in out.splitlines()
                         if line and not line.startswith("#")]
        assert rewrite_lines
        rewrite_path = tmp_path / "rewrite.s"
        rewrite_path.write_text("\n".join(rewrite_lines) + "\n")

        rc = main(["validate", kernel_file, str(rewrite_path),
                   "--live-out", "xmm0", "--range", "xmm0=-10:10",
                   "--proposals", "1500"])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_validate_fails_wrong_rewrite(self, kernel_file, tmp_path,
                                          capsys):
        wrong = tmp_path / "wrong.s"
        wrong.write_text("mulsd xmm0, xmm0\n")
        rc = main(["validate", kernel_file, str(wrong),
                   "--live-out", "xmm0", "--range", "xmm0=-10:10",
                   "--proposals", "800"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out


class TestVerify:
    def test_verify_files(self, kernel_file, tmp_path, capsys):
        rewrite = tmp_path / "rewrite.s"
        rewrite.write_text("addsd xmm0, xmm0\naddsd xmm0, xmm0\n")
        rc = main(["verify", kernel_file, str(rewrite), "--sound",
                   "--live-out", "xmm0", "--range", "xmm0=0.5:2",
                   "--budget", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "certified bound" in out
        assert "complete=True" in out

    def test_verify_kernel_with_seeds(self, capsys):
        rc = main(["verify", "--kernel", "exp", "--degree", "8",
                   "--budget", "32", "--seed-proposals", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "counterexample seed" in out
        assert "certified bound" in out

    def test_verify_emit_and_check_cert(self, tmp_path, capsys):
        cert = tmp_path / "sin.cert.json"
        rc = main(["verify", "--kernel", "sin", "--degree", "9",
                   "--budget", "16", "--emit-cert", str(cert)])
        assert rc == 0
        assert cert.exists()
        rc = main(["verify", "--kernel", "sin", "--degree", "9",
                   "--check-cert", str(cert)])
        assert rc == 0
        assert "VALID" in capsys.readouterr().out

    def test_check_cert_rejects_wrong_program(self, tmp_path, capsys):
        cert = tmp_path / "exp.cert.json"
        rc = main(["verify", "--kernel", "exp", "--degree", "8",
                   "--budget", "16", "--emit-cert", str(cert)])
        assert rc == 0
        # Check the exp certificate against the sin kernel: digests differ.
        rc = main(["verify", "--kernel", "sin", "--degree", "9",
                   "--check-cert", str(cert)])
        assert rc == 1
        assert "REJECTED" in capsys.readouterr().out

    def test_check_cert_missing_file(self, tmp_path, capsys):
        rc = main(["verify", "--kernel", "sin", "--degree", "9",
                   "--check-cert", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().out

    def test_check_cert_malformed_file(self, tmp_path, capsys):
        cert = tmp_path / "garbage.json"
        cert.write_text("{not a certificate")
        rc = main(["verify", "--kernel", "sin", "--degree", "9",
                   "--check-cert", str(cert)])
        assert rc == 2
        assert "malformed" in capsys.readouterr().out

    def test_check_cert_truncated_document(self, tmp_path, capsys):
        cert = tmp_path / "partial.json"
        cert.write_text('{"version": 1}')  # valid JSON, not a cert
        rc = main(["verify", "--kernel", "sin", "--degree", "9",
                   "--check-cert", str(cert)])
        assert rc == 2
        assert "malformed" in capsys.readouterr().out


class TestOptimizeExitCodes:
    def test_zero_accepted_proposals_fails(self, kernel_file, capsys):
        # Seed 0 rejects both of its two proposals; an optimize run that
        # never accepted anything must not exit 0.
        rc = main(["optimize", kernel_file, "--live-out", "xmm0",
                   "--range", "xmm0=-10:10", "--proposals", "2",
                   "--seed", "0"])
        assert rc == 1
        assert "zero proposals" in capsys.readouterr().out


class TestService:
    """submit/serve/status/artifacts happy path against a tmp store."""

    def _submit(self, store, capsys):
        rc = main(["submit", "--store", store, "--kernel", "dot",
                   "--chains", "1", "--proposals", "300",
                   "--testcases", "8", "--stages", "search,select",
                   "--name", "cli-test", "--json"])
        assert rc == 0
        return json.loads(capsys.readouterr().out)

    def test_full_cycle(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        doc = self._submit(store, capsys)
        assert doc["new"] == 2 and doc["reused"] == 0
        roles = {job["role"]: job["digest"] for job in doc["jobs"]}
        assert sorted(roles) == ["dot/eta=0/search[0]", "dot/eta=0/select"]

        rc = main(["serve", "--store", store, "--jobs", "1",
                   "--quiet", "--json"])
        assert rc == 0
        counts = json.loads(capsys.readouterr().out)["counts"]
        assert counts == {"pending": 0, "running": 0, "done": 2,
                          "failed": 0}

        rc = main(["status", "--store", store, "--json"])
        assert rc == 0
        status = json.loads(capsys.readouterr().out)
        assert status["totals"]["done"] == 2
        states = {job["role"]: job["state"]
                  for job in status["campaigns"][0]["jobs"]}
        assert set(states.values()) == {"done"}

        # Resubmitting the identical campaign reuses every job.
        assert self._submit(store, capsys)["reused"] == 2

        # The select job's rewrite artifact is readable by digest prefix.
        select = roles["dot/eta=0/select"]
        rc = main(["artifacts", "--store", store, "--job", select[:12],
                   "--name", "rewrite.s"])
        assert rc == 0
        assert capsys.readouterr().out.strip()

        rc = main(["artifacts", "--store", store, "--job", select[:12],
                   "--json"])
        assert rc == 0
        listing = json.loads(capsys.readouterr().out)
        assert "result.json" in listing["artifacts"]
        assert "rewrite.s" in listing["artifacts"]

    def test_artifacts_rejects_unknown_prefix(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self._submit(store, capsys)
        with pytest.raises(SystemExit):
            main(["artifacts", "--store", store, "--job", "ffff"])

    def test_submit_rejects_unknown_kernel(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["submit", "--store", str(tmp_path / "s"),
                  "--kernel", "nosuch"])


class TestCatalogCli:
    """catalog build/query/select against a fabricated finished sweep."""

    def _seed(self, store, **kwargs):
        from repro.service import Ledger
        from tests.catalog.conftest import plant_campaign

        with Ledger(store) as ledger:
            return plant_campaign(ledger, **kwargs)

    def test_build_query_select_round_trip(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        cid = self._seed(store)
        rc = main(["catalog", "build", "--store", store, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["campaign"] == cid
        digest = doc["digest"]

        # Rebuilding from the same ledger is byte-identical.
        assert main(["catalog", "build", "--store", store,
                     "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["digest"] == digest

        rc = main(["catalog", "query", "--store", store, "--frontier",
                   "--json"])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["digest"] == digest
        assert [e["id"] for e in out["entries"]] == \
            ["dot/eta=0", "dot/eta=10"]

        rc = main(["catalog", "select", "--store", store, "--budget",
                   "4", "--workload", "dot:2", "--json"])
        assert rc == 0
        sel = json.loads(capsys.readouterr().out)
        assert sel["assignment"]["dot"]["id"] == "dot/eta=10"
        assert sel["latency"] == 100

    def test_query_unknown_kernel_exits(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self._seed(store)
        main(["catalog", "build", "--store", store, "--json"])
        capsys.readouterr()
        with pytest.raises(SystemExit, match="not in catalog"):
            main(["catalog", "query", "--store", store,
                  "--kernel", "cos"])

    def test_select_before_build_exits_with_guidance(self, tmp_path):
        store = str(tmp_path / "store")
        self._seed(store)
        with pytest.raises(SystemExit, match="repro catalog build"):
            main(["catalog", "select", "--store", store,
                  "--budget", "1"])

    def test_build_needs_a_campaign(self, tmp_path):
        from repro.service import Ledger

        store = str(tmp_path / "store")
        with Ledger(store):
            pass
        with pytest.raises(SystemExit, match="no campaigns"):
            main(["catalog", "build", "--store", store])

    def test_build_picks_among_campaigns(self, tmp_path, capsys):
        from tests.catalog.conftest import select_doc, uf_doc

        store = str(tmp_path / "store")
        self._seed(store)
        self._seed(store, cid="cat-2",
                   cells=[("add", 0.0,
                           select_doc("a0", 30, target_latency=60),
                           uf_doc("a0"))])
        with pytest.raises(SystemExit, match="pick one"):
            main(["catalog", "build", "--store", store])
        rc = main(["catalog", "build", "--store", store,
                   "--campaign", "cat-2", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert list(doc["summary"]["kernels"]) == ["add"]

    def test_url_build_rejects_store_only_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="--check"):
            main(["catalog", "build", "--url", "http://localhost:1",
                  "--campaign", "c", "--check"])

    def test_ambiguous_prefix_lists_matches(self, tmp_path, capsys):
        from repro.service import Ledger

        store = str(tmp_path / "store")
        self._seed(store)
        with Ledger(store) as ledger:
            for suffix in ("aa", "bb"):
                ledger._conn.execute(
                    "INSERT INTO jobs (digest, kind, payload, state,"
                    " role, max_attempts, created_at, updated_at)"
                    " VALUES (?, 'search', '{}', 'pending', '', 3, 0, 0)",
                    ("abcdef" + suffix + "0" * 56,))
            ledger._conn.commit()
        with pytest.raises(SystemExit) as err:
            main(["artifacts", "--store", store, "--job", "abcdef"])
        message = str(err.value)
        assert "ambiguous" in message
        assert "abcdefaa" in message and "abcdefbb" in message
