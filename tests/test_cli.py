"""Tests for the ``python -m repro`` command-line front-end."""

import pytest

from repro.cli import _parse_ranges, _parse_values, main

KERNEL = """
movq $2.0d, xmm1
mulsd xmm1, xmm0
addsd xmm0, xmm0
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "kernel.s"
    path.write_text(KERNEL)
    return str(path)


class TestParsing:
    def test_ranges(self):
        assert _parse_ranges(["xmm0=-1:2.5"]) == {"xmm0": (-1.0, 2.5)}

    def test_ranges_reject_bad(self):
        with pytest.raises(SystemExit):
            _parse_ranges(["xmm0=5"])

    def test_values(self):
        assert _parse_values(["xmm0=2.5", "rax=7"]) == \
            {"xmm0": 2.5, "rax": 7.0}

    def test_values_reject_bad(self):
        with pytest.raises(SystemExit):
            _parse_values(["xmm0"])


class TestCommands:
    def test_run(self, kernel_file, capsys):
        rc = main(["run", kernel_file, "--set", "xmm0=2.5",
                   "--live-out", "xmm0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "10.0" in out

    def test_run_signal(self, tmp_path, capsys):
        path = tmp_path / "fault.s"
        path.write_text("movsd (rax), xmm0\n")
        rc = main(["run", str(path), "--set", "rax=4096",
                   "--live-out", "xmm0"])
        assert rc == 1
        assert "SIGSEGV" in capsys.readouterr().out

    def test_trace(self, kernel_file, capsys):
        rc = main(["trace", kernel_file, "--set", "xmm0=1.0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mulsd" in out and "->" in out

    def test_optimize_and_validate(self, kernel_file, tmp_path, capsys):
        rc = main(["optimize", kernel_file, "--live-out", "xmm0",
                   "--range", "xmm0=-10:10", "--proposals", "2500",
                   "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        rewrite_lines = [line for line in out.splitlines()
                         if line and not line.startswith("#")]
        assert rewrite_lines
        rewrite_path = tmp_path / "rewrite.s"
        rewrite_path.write_text("\n".join(rewrite_lines) + "\n")

        rc = main(["validate", kernel_file, str(rewrite_path),
                   "--live-out", "xmm0", "--range", "xmm0=-10:10",
                   "--proposals", "1500"])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_validate_fails_wrong_rewrite(self, kernel_file, tmp_path,
                                          capsys):
        wrong = tmp_path / "wrong.s"
        wrong.write_text("mulsd xmm0, xmm0\n")
        rc = main(["validate", kernel_file, str(wrong),
                   "--live-out", "xmm0", "--range", "xmm0=-10:10",
                   "--proposals", "800"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out


class TestVerify:
    def test_verify_files(self, kernel_file, tmp_path, capsys):
        rewrite = tmp_path / "rewrite.s"
        rewrite.write_text("addsd xmm0, xmm0\naddsd xmm0, xmm0\n")
        rc = main(["verify", kernel_file, str(rewrite), "--sound",
                   "--live-out", "xmm0", "--range", "xmm0=0.5:2",
                   "--budget", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "certified bound" in out
        assert "complete=True" in out

    def test_verify_kernel_with_seeds(self, capsys):
        rc = main(["verify", "--kernel", "exp", "--degree", "8",
                   "--budget", "32", "--seed-proposals", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "counterexample seed" in out
        assert "certified bound" in out

    def test_verify_emit_and_check_cert(self, tmp_path, capsys):
        cert = tmp_path / "sin.cert.json"
        rc = main(["verify", "--kernel", "sin", "--degree", "9",
                   "--budget", "16", "--emit-cert", str(cert)])
        assert rc == 0
        assert cert.exists()
        rc = main(["verify", "--kernel", "sin", "--degree", "9",
                   "--check-cert", str(cert)])
        assert rc == 0
        assert "VALID" in capsys.readouterr().out

    def test_check_cert_rejects_wrong_program(self, tmp_path, capsys):
        cert = tmp_path / "exp.cert.json"
        rc = main(["verify", "--kernel", "exp", "--degree", "8",
                   "--budget", "16", "--emit-cert", str(cert)])
        assert rc == 0
        # Check the exp certificate against the sin kernel: digests differ.
        rc = main(["verify", "--kernel", "sin", "--degree", "9",
                   "--check-cert", str(cert)])
        assert rc == 1
        assert "REJECTED" in capsys.readouterr().out
