"""Differential tests for the batched evaluator (Runner.run_batch).

The batched JIT entry point and the pooled reset-in-place machine states
must be observationally identical to the original one-fresh-state-per-
test dispatch: same live-out bits, same signals, no state leaking
between tests, batches, or programs.
"""

import random

import pytest

from repro.x86.assembler import assemble
from repro.x86.jit import compile_program
from repro.x86.locations import MemLoc
from repro.x86.signals import Signal

from repro.core.runner import Runner
from repro.kernels.libimf import LIBIMF_KERNELS

from tests.conftest import base_testcase, random_program

BACKENDS = ("jit", "emulator", "vector")


def reference_results(runner, program, tests):
    """(values, signal) per test via fresh independent states.

    This is the ground truth the pooled/batched paths must match: every
    test executes on its own ``build_state`` copy, so no reuse bug can
    contaminate it.
    """
    prepared = runner.prepare(program)
    results = []
    for tc in tests:
        state = tc.build_state()
        if runner.backend == "emulator":
            outcome = runner._emulator.run(prepared, state)
        else:
            outcome = prepared.run(state)
        if outcome.ok:
            results.append((runner.read_values(state), None))
        else:
            results.append((None, outcome.signal))
    return results


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kernel", sorted(LIBIMF_KERNELS))
def test_run_batch_matches_reference_on_kernels(backend, kernel):
    spec = LIBIMF_KERNELS[kernel]()
    tests = spec.testcases(random.Random(3), 24)
    runner = Runner(spec.live_outs, backend=backend)
    expected = reference_results(runner, spec.program, tests)
    prepared = runner.prepare(spec.program)
    assert runner.run_batch(prepared, tests) == expected
    # and per-test dispatch through the pooled states agrees too
    assert [runner.run_values(prepared, tc) for tc in tests] == expected


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(8))
def test_run_batch_matches_reference_on_random_programs(backend, seed):
    # base_testcase inputs are arbitrary 64-bit patterns, so these
    # batches routinely carry NaN payloads (quiet and signalling) and
    # denormals through the batched path.
    program = random_program(seed, 12)
    tests = [base_testcase(seed * 100 + i) for i in range(12)]
    runner = Runner(["xmm0", "rax"], backend=backend)
    expected = reference_results(runner, program, tests)
    prepared = runner.prepare(program)
    assert runner.run_batch(prepared, tests) == expected


@pytest.mark.parametrize("backend", BACKENDS)
def test_signalling_test_does_not_poison_batch(backend):
    # One test faults mid-batch; the others must still produce exactly
    # their independent-state results.
    program = assemble("""
        movsd (rax), xmm0
        addsd xmm0, xmm1
    """)
    good = [base_testcase(i).replace("rax", 0x4000) for i in range(3)]
    bad = base_testcase(9).replace("rax", 0xDEAD0000)
    tests = [good[0], bad, good[1], good[2]]
    runner = Runner(["xmm1"], backend=backend)
    expected = reference_results(runner, program, tests)
    assert expected[1] == (None, Signal.SIGSEGV)
    prepared = runner.prepare(program)
    results = runner.run_batch(prepared, tests)
    assert results == expected
    if backend == "jit":
        # same through the specialized (tiered-up) batch entry point
        prepared.specialize_batch()
        assert runner.run_batch(prepared, tests) == expected


@pytest.mark.parametrize("backend", BACKENDS)
def test_same_batch_twice_is_identical(backend):
    # State-pool no-contamination: rerunning the identical batch must
    # reproduce the identical bits even though every state was reused.
    spec = LIBIMF_KERNELS["sin"]()
    tests = spec.testcases(random.Random(7), 16)
    runner = Runner(spec.live_outs, backend=backend)
    prepared = runner.prepare(spec.program)
    first = runner.run_batch(prepared, tests)
    second = runner.run_batch(prepared, tests)
    assert first == second


@pytest.mark.parametrize("backend", BACKENDS)
def test_duplicate_test_object_in_batch(backend):
    # The same TestCase object twice in one batch cannot share a pooled
    # state; both slots must produce that test's own output.
    spec = LIBIMF_KERNELS["exp"]()
    tests = spec.testcases(random.Random(11), 4)
    batch = [tests[0], tests[1], tests[0], tests[0]]
    runner = Runner(spec.live_outs, backend=backend)
    expected = reference_results(runner, spec.program, batch)
    assert expected[0] == expected[2] == expected[3]
    prepared = runner.prepare(spec.program)
    assert runner.run_batch(prepared, batch) == expected


@pytest.mark.parametrize("backend", BACKENDS)
def test_memory_writes_restored_between_runs(backend):
    # A program that clobbers the writable scratch segment must see the
    # original segment contents on every pooled execution.
    program = assemble("""
        movsd xmm0, (rbx)
        movsd 8(rbx), xmm1
    """)
    tc = base_testcase(5)
    runner = Runner(["xmm1", MemLoc("scratch", 0, "f64")], backend=backend)
    expected = reference_results(runner, program, [tc])
    prepared = runner.prepare(program)
    for _ in range(3):
        assert runner.run_values(prepared, tc) == expected[0]
    for _ in range(2):
        assert runner.run_batch(prepared, [tc]) == expected


def test_interleaved_programs_with_different_write_sets():
    # Program A dirties xmm slots, program B dirties a GP register and
    # memory.  Alternating them over the same pooled states exercises
    # the dirty-slot promise: each handout restores exactly what the
    # previous program said it would write.
    prog_a = assemble("addsd xmm1, xmm0\nmulsd xmm0, xmm1")
    prog_b = assemble("mov rcx, rax\nmovsd xmm2, (rbx)")
    tests = [base_testcase(40 + i) for i in range(6)]
    runner = Runner(["xmm0", "xmm1", "rax", MemLoc("scratch", 0, "f64")],
                    backend="jit")
    expected_a = reference_results(runner, prog_a, tests)
    expected_b = reference_results(runner, prog_b, tests)
    a = runner.prepare(prog_a)
    b = runner.prepare(prog_b)
    assert a.writes != b.writes
    for _ in range(3):
        assert runner.run_batch(a, tests) == expected_a
        assert runner.run_batch(b, tests) == expected_b


@pytest.mark.parametrize("seed", range(12))
def test_compiled_writes_covers_all_mutations(seed):
    # CompiledProgram.writes is a promise consumed by the state pool's
    # targeted restore; any slot it omits would never be reset.  Diff a
    # fresh state before/after execution and check every changed slot is
    # covered.
    program = random_program(seed, 10)
    compiled = compile_program(program)
    gp_idx, xl_idx, xh_idx, writes_mem = compiled.writes
    tc = base_testcase(seed)
    state = tc.build_state()
    before = state.snapshot()
    if not compiled.run(state).ok:
        return  # state undefined after a signal; nothing to check
    gp0, lo0, hi0, _flags, mem0 = before
    for i, (old, new) in enumerate(zip(gp0, state.gp)):
        if old != new:
            assert i in gp_idx
    for i, (old, new) in enumerate(zip(lo0, state.xmm_lo)):
        if old != new:
            assert i in xl_idx
    for i, (old, new) in enumerate(zip(hi0, state.xmm_hi)):
        if old != new:
            assert i in xh_idx
    if state.mem.snapshot_writable() != mem0:
        assert writes_mem


def _contents(state):
    """Value-equality view of a state (segment identity ignored)."""
    return (list(state.gp), list(state.xmm_lo), list(state.xmm_hi),
            [(seg.name, bytes(seg.data)) for seg in state.mem.segments])


def test_pooled_state_full_restore_without_promise():
    # pooled_state() with no write-set promise must fully restore on the
    # next handout, even after arbitrary mutation.
    tc = base_testcase(1)
    pristine = _contents(tc.build_state())
    state = tc.pooled_state()
    state.gp[0] = 0x1234
    state.xmm_lo[3] = 0x5678
    state.mem.store8(0x4000, 0xDEAD)
    state = tc.pooled_state()
    assert _contents(state) == pristine


def test_pooled_state_honors_write_promise_scope():
    # With a precise promise, only the promised slots are restored; a
    # violation of the promise (mutating an unpromised slot) is visible
    # on the next handout.  This pins the contract: the promise is load-
    # bearing, not advisory.
    tc = base_testcase(2)
    pristine = tc.build_state().snapshot()
    promise = ((0,), (), (), False)  # "I will only write gp[0]"
    state = tc.pooled_state(promise)
    state.gp[0] = 0x1111
    state.gp[1] = 0x2222  # outside the promise
    state = tc.pooled_state()
    assert state.gp[0] == pristine[0][0]  # promised slot restored
    assert state.gp[1] == 0x2222  # unpromised slot intentionally not


def test_segments_shared_with_reference():
    # Read-only segments must be shared (identity) between the pooled
    # state and fresh builds; writable ones must not be.
    tc = base_testcase(3)
    pooled = tc.pooled_state()
    fresh = tc.build_state()
    by_name_pooled = {seg.name: seg for seg in pooled.mem.segments}
    by_name_fresh = {seg.name: seg for seg in fresh.mem.segments}
    assert by_name_pooled["table"].data is by_name_fresh["table"].data
    assert by_name_pooled["scratch"].data is not by_name_fresh["scratch"].data


def test_make_reader_matches_loc_read():
    from repro.core.runner import resolve_locations
    from repro.x86.locations import make_reader

    program = random_program(17, 8)
    tc = base_testcase(17)
    state = tc.build_state()
    compile_program(program).run(state)
    locs = resolve_locations(
        ["xmm0", "xmm1:hd", "rax", "ecx", MemLoc("scratch", 8, "f64")])
    for loc in locs:
        assert make_reader(loc)(state) == loc.read(state)


# ---------------------------------------------------------------------------
# Special-value differential fuzz: adversarial IEEE-754 bit patterns
# driven through all three backends.  Any divergence found by widening
# these pools gets pinned here as a regression.

_SPECIAL_F64 = (
    0x7FF8000000000000,  # canonical quiet NaN
    0xFFF8000000000001,  # negative quiet NaN, nonzero payload
    0x7FF0000000000001,  # signalling NaN, minimal payload
    0x7FF4DEADBEEF0001,  # signalling NaN, arbitrary payload
    0x0000000000000000,  # +0.0
    0x8000000000000000,  # -0.0
    0x0000000000000001,  # smallest positive denormal
    0x800FFFFFFFFFFFFF,  # largest-magnitude negative denormal
    0x7FF0000000000000,  # +inf
    0xFFF0000000000000,  # -inf
    0x7FEFFFFFFFFFFFFF,  # largest finite double
    0xBFF0000000000000,  # -1.0
)

_SPECIAL_F32 = (
    0x7FC00000,  # canonical quiet NaN
    0xFFC00001,  # negative quiet NaN, nonzero payload
    0x7F800001,  # signalling NaN
    0x00000000,  # +0.0
    0x80000000,  # -0.0
    0x00000001,  # smallest positive denormal
    0x7F800000,  # +inf
    0xFF800000,  # -inf
)


def _assert_backends_agree(program, live_outs, tests):
    """run_batch of every backend must agree bit-for-bit (values and
    signals); jit is the reference."""
    reference = None
    for backend in BACKENDS:
        runner = Runner(live_outs, backend=backend)
        results = runner.run_batch(runner.prepare(program), tests)
        if reference is None:
            reference = results
        else:
            assert results == reference, f"{backend} diverges from jit"


@pytest.mark.parametrize("kernel", sorted(LIBIMF_KERNELS))
def test_special_value_fuzz_on_kernels(kernel):
    # NaN payloads (quiet and signalling), signed zeros, denormals and
    # infinities pushed straight through each kernel's argument register.
    spec = LIBIMF_KERNELS[kernel]()
    base = spec.testcases(random.Random(19), 1)[0]
    tests = [base.replace("xmm0", bits) for bits in _SPECIAL_F64]
    _assert_backends_agree(spec.program, spec.live_outs, tests)


def test_special_value_fuzz_on_delta():
    # The AEK delta kernel: packed-single arithmetic and memory-resident
    # camera constants (the vector backend's per-lane fallback path).
    from repro.kernels.aek.vector import delta_kernel

    spec = delta_kernel()
    base = spec.testcases(random.Random(23), 1)[0]
    tests = [base.replace("xmm0:s0", bits) for bits in _SPECIAL_F32]
    tests += [base.replace("xmm1:s0", bits) for bits in _SPECIAL_F32]
    _assert_backends_agree(spec.program, spec.live_outs, tests)


@pytest.mark.parametrize("seed", range(6))
def test_special_value_fuzz_on_random_programs(seed):
    # Random programs over the full opcode surface with special values
    # planted in every input register the pools draw from.
    program = random_program(1000 + seed, 10)
    tests = []
    for i, bits in enumerate(_SPECIAL_F64):
        tc = base_testcase(seed * 37 + i)
        tc = tc.replace("xmm0", bits)
        tc = tc.replace("xmm1", _SPECIAL_F64[-1 - i])
        tc = tc.replace("xmm2", _SPECIAL_F64[(i + 3) % len(_SPECIAL_F64)])
        tests.append(tc)
    _assert_backends_agree(program, ["xmm0", "xmm1", "rax"], tests)


def test_vector_backend_faulting_lane_is_frozen():
    # A lane that signals mid-program must freeze: its later
    # instructions (including memory stores) must not execute, and the
    # surviving lanes' results must be unaffected.
    program = assemble("""
        movsd (rax), xmm0
        movsd xmm1, (rbx)
    """)
    good = [base_testcase(i).replace("rax", 0x4000) for i in range(3)]
    bad = base_testcase(4).replace("rax", 0xDEAD0000)
    tests = [good[0], bad, good[1], good[2]]
    runner = Runner([MemLoc("scratch", 0, "f64")], backend="vector")
    expected = reference_results(runner, program, tests)
    assert expected[1] == (None, Signal.SIGSEGV)
    prepared = runner.prepare(program)
    assert runner.run_batch(prepared, tests) == expected
