"""Tests for the proposal distribution q(.) — STOKE's four transforms."""

import random

import pytest

from repro.x86.assembler import assemble
from repro.x86.instruction import UNUSED
from repro.x86.opcodes import OPCODES
from repro.x86.operands import Imm, Kind, Mem, Xmm
from repro.x86.program import Program

from repro.core.transforms import (
    MOVE_KINDS,
    OperandPool,
    Transforms,
    default_opcode_pool,
)

TARGET = assemble("""
    movq $2.0d, xmm1
    mulsd xmm1, xmm0
    addsd 8(rdi), xmm0
""", total_slots=6)


class TestOperandPool:
    def test_collects_target_operands(self):
        pool = OperandPool(TARGET)
        assert Xmm(1) in pool.by_kind[Kind.XMM]
        assert Mem(8, 7, 8) in pool.by_kind[Kind.M64]
        imm_values = {imm.value for imm in pool.by_kind[Kind.IMM]}
        assert 0x4000000000000000 in imm_values  # 2.0's bit pattern

    def test_default_registers_present(self):
        pool = OperandPool(TARGET)
        assert len(pool.by_kind[Kind.XMM]) >= 8
        assert pool.by_kind[Kind.R64]

    def test_sample_respects_kinds(self):
        pool = OperandPool(TARGET)
        rng = random.Random(0)
        for _ in range(50):
            op = pool.sample(rng, frozenset({Kind.XMM}))
            assert isinstance(op, Xmm)

    def test_sample_empty_returns_none(self):
        pool = OperandPool(assemble("addsd xmm1, xmm0"))
        assert pool.sample(random.Random(0), frozenset({Kind.M128})) is None


class TestMoves:
    def setup_method(self):
        self.transforms = Transforms(TARGET)
        self.rng = random.Random(42)

    def test_opcode_move_keeps_operands(self):
        for _ in range(30):
            proposed = self.transforms.propose_opcode(self.rng, TARGET)
            if proposed is None:
                continue
            proposal, span = proposed
            changed = [(i, a, b) for i, (a, b) in
                       enumerate(zip(TARGET.slots, proposal.slots)) if a != b]
            assert len(changed) == 1
            index, old, new = changed[0]
            assert span == index
            assert old.operands == new.operands
            assert old.opcode != new.opcode

    def test_operand_move_keeps_opcode(self):
        for _ in range(30):
            proposed = self.transforms.propose_operand(self.rng, TARGET)
            if proposed is None:
                continue
            proposal, span = proposed
            changed = [(i, a, b) for i, (a, b) in
                       enumerate(zip(TARGET.slots, proposal.slots)) if a != b]
            assert len(changed) <= 1
            if changed:
                assert span == changed[0][0]
                assert changed[0][1].opcode == changed[0][2].opcode

    def test_swap_is_permutation(self):
        proposal, span = self.transforms.propose_swap(self.rng, TARGET)
        assert sorted(map(str, proposal.slots)) == \
            sorted(map(str, TARGET.slots))
        changed = [i for i, (a, b) in
                   enumerate(zip(TARGET.slots, proposal.slots)) if a != b]
        if changed:
            # The edit span is the *lowest* changed slot: everything
            # before it is byte-identical to the pre-swap program.
            assert span == min(changed)

    def test_instruction_move_can_insert_into_unused(self):
        empty = TARGET.with_slot(0, UNUSED)
        inserted = 0
        for _ in range(100):
            proposed = self.transforms.propose_instruction(self.rng, empty)
            if proposed is not None and proposed[0].loc > empty.loc:
                inserted += 1
        assert inserted > 0

    def test_instruction_move_can_delete(self):
        deleted = 0
        for _ in range(100):
            proposed = self.transforms.propose_instruction(self.rng, TARGET)
            if proposed is not None and proposed[0].loc < TARGET.loc:
                deleted += 1
        assert deleted > 0

    def test_all_proposals_are_valid_programs(self):
        program = TARGET
        for _ in range(300):
            proposal, kind, span = self.transforms.propose(self.rng, program)
            assert kind in MOVE_KINDS
            if proposal is None:
                assert span is None
                continue
            for instr in proposal.slots:
                assert OPCODES[instr.opcode].accepts(instr.operands)
            program = proposal  # walk

    def test_edit_span_covers_all_changes(self):
        """Every changed slot sits at or after the reported edit span, so
        the prefix ``slots[:span]`` is always reusable by the incremental
        evaluator."""
        program = TARGET
        for _ in range(300):
            proposal, _, span = self.transforms.propose(self.rng, program)
            if proposal is None:
                continue
            changed = [i for i, (a, b) in
                       enumerate(zip(program.slots, proposal.slots))
                       if a != b]
            if changed:
                assert span is not None
                assert span == min(changed)
                assert program.slots[:span] == proposal.slots[:span]
            program = proposal

    def test_random_instruction_valid(self):
        for _ in range(100):
            instr = self.transforms.random_instruction(self.rng)
            assert instr is not None
            assert OPCODES[instr.opcode].accepts(instr.operands)

    def test_all_move_kinds_proposed(self):
        seen = set()
        for _ in range(200):
            _, kind, _ = self.transforms.propose(self.rng, TARGET)
            seen.add(kind)
        assert seen == set(MOVE_KINDS)


class TestErgodicity:
    @staticmethod
    def _walk_locs(seed, steps=500):
        transforms = Transforms(TARGET)
        rng = random.Random(seed)
        locs = set()
        program = TARGET
        for _ in range(steps):
            proposal, _, _ = transforms.propose(rng, program)
            if proposal is not None:
                program = proposal
                locs.add(program.loc)
        return locs

    def test_walk_reaches_shorter_and_longer_programs(self):
        locs = self._walk_locs(7)
        assert min(locs) < TARGET.loc
        assert max(locs) >= TARGET.loc

    def test_walk_shrinks_and_grows_for_every_seed(self):
        """Regression for the growth-only walk: a fixed unused
        probability of 0.2 saturated 6-slot programs at max LOC, so the
        chain effectively never proposed net deletions.  The occupancy-
        scaled delete probability must reach both sides of the target's
        LOC regardless of the rng stream."""
        for seed in range(10):
            locs = self._walk_locs(seed)
            assert min(locs) < TARGET.loc, f"never shrank (seed {seed})"
            assert max(locs) > TARGET.loc, f"never grew (seed {seed})"


class TestDeleteProbability:
    def test_scales_with_occupancy(self):
        transforms = Transforms(TARGET)
        full = TARGET.compact()  # 3/3 slots occupied
        empty = Program([UNUSED] * 6)
        full_p = transforms.delete_probability(full)
        half_p = transforms.delete_probability(TARGET)  # 3/6 occupied
        empty_p = transforms.delete_probability(empty)
        assert full_p == pytest.approx(1.0 - transforms.unused_probability)
        assert half_p == pytest.approx(0.5)
        assert empty_p == pytest.approx(transforms.unused_probability)
        assert empty_p < half_p < full_p

    def test_balanced_at_half_occupancy(self):
        """Delete flux o*p equals insert flux (1-o)*(1-p) at o = 1/2."""
        transforms = Transforms(TARGET)
        p = transforms.delete_probability(TARGET)  # half occupied
        o = 0.5
        assert o * p == pytest.approx((1.0 - o) * (1.0 - p))


class TestMoveKindRestriction:
    def test_single_move_kind(self):
        transforms = Transforms(TARGET, move_kinds=["swap"])
        rng = random.Random(0)
        for _ in range(50):
            _, kind, _ = transforms.propose(rng, TARGET)
            assert kind == "swap"

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Transforms(TARGET, move_kinds=["opcode", "delete"])

    def test_rejects_empty_kinds(self):
        with pytest.raises(ValueError):
            Transforms(TARGET, move_kinds=[])


class TestCrossProcessDeterminism:
    def test_sample_enumerates_kinds_in_sorted_order(self):
        """Operand sampling must not depend on frozenset iteration order
        (Kind hashes by member name, so raw set order varies with
        PYTHONHASHSEED across worker processes).  Pin the contract: the
        candidate list is the sorted-by-kind-value concatenation."""
        pool = OperandPool(TARGET)
        kinds = frozenset({Kind.XMM, Kind.IMM, Kind.M64})
        candidates = []
        for kind in sorted(kinds, key=lambda k: k.value):
            candidates.extend(pool.by_kind.get(kind, ()))
        rng_a, rng_b = random.Random(3), random.Random(3)
        for _ in range(50):
            assert pool.sample(rng_a, kinds) == rng_b.choice(candidates)

    def test_walk_is_reproducible(self):
        walk_a = TestErgodicity._walk_locs(11)
        walk_b = TestErgodicity._walk_locs(11)
        assert walk_a == walk_b


class TestOpcodePool:
    def test_excludes_nop(self):
        pool = default_opcode_pool(TARGET)
        assert "nop" not in pool
        assert "addsd" in pool
        assert "cmovae" in pool
