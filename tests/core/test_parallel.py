"""Tests for the process-parallel multi-chain search engine."""

import pickle
import random

import pytest

from repro.x86.assembler import assemble
from repro.x86.testcase import uniform_testcases

from repro.core import (
    CostConfig,
    SearchConfig,
    Stoke,
    StokeSpec,
    run_restarts,
)
from repro.core.parallel import (
    build_stoke,
    chain_configs,
    default_jobs,
    resolve_jobs,
    run_chains,
    run_seeded_chains,
)
from repro.core.restarts import RestartResult


def _tests():
    return uniform_testcases(random.Random(0), 16, {"xmm0": (-50.0, 50.0)})


def _spec(tiny_target):
    return StokeSpec(target=tiny_target, tests=tuple(_tests()),
                     live_outs=("xmm0",),
                     cost_config=CostConfig(eta=0.0, k=1.0))


def _chain_fingerprint(result):
    return (result.seed, result.best_cost, result.best_program,
            result.best_correct, result.best_correct_latency,
            result.stats.accepted, result.stats.invalid_proposals,
            result.stats.moves_proposed, result.stats.moves_accepted,
            tuple(result.trace))


class TestStokeSpec:
    def test_spec_is_picklable_and_builds(self, tiny_target):
        spec = _spec(tiny_target)
        rebuilt = pickle.loads(pickle.dumps(spec))
        stoke = build_stoke(rebuilt)
        assert isinstance(stoke, Stoke)
        assert stoke.target == tiny_target

    def test_from_stoke_roundtrip(self, tiny_target):
        stoke = Stoke(tiny_target, _tests(), ["xmm0"],
                      CostConfig(eta=0.0, k=1.0))
        spec = StokeSpec.from_stoke(stoke)
        clone = spec.build()
        config = SearchConfig(proposals=200, seed=3)
        assert _chain_fingerprint(stoke.search(config)) == \
            _chain_fingerprint(clone.search(config))

    def test_from_stoke_rejects_slow_check(self, tiny_target):
        stoke = Stoke(tiny_target, _tests(), ["xmm0"],
                      CostConfig(eta=0.0, k=1.0),
                      slow_check=lambda program: True)
        with pytest.raises(ValueError):
            StokeSpec.from_stoke(stoke)

    def test_factory_spec(self, tiny_target):
        calls = []

        def factory():
            calls.append(1)
            return Stoke(tiny_target, _tests(), ["xmm0"],
                         CostConfig(eta=0.0, k=1.0))

        results = run_chains(factory, chain_configs(
            SearchConfig(proposals=100, seed=0), 2), jobs=1)
        assert len(results) == 2
        assert calls == [1]  # one worker (in-process) -> one build


class TestJobResolution:
    def test_default_jobs_positive(self):
        assert default_jobs() >= 1
        assert default_jobs(chains=1) == 1

    def test_resolve_auto(self):
        assert resolve_jobs(None, 8) == default_jobs(8)
        assert resolve_jobs(0, 8) == default_jobs(8)

    def test_resolve_caps_at_chains(self):
        assert resolve_jobs(16, 3) == 3

    def test_resolve_rejects_negative(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1, 4)

    def test_chain_configs_seeds(self):
        configs = chain_configs(SearchConfig(proposals=10, seed=7), 3)
        assert [c.seed for c in configs] == [7, 8, 9]

    def test_chain_configs_rejects_zero(self):
        with pytest.raises(ValueError):
            chain_configs(SearchConfig(), 0)


class TestDeterminism:
    """Same seeds => bit-identical results for any worker count."""

    def test_serial_vs_parallel_chains(self, tiny_target):
        spec = _spec(tiny_target)
        config = SearchConfig(proposals=400, seed=5)
        serial = run_seeded_chains(spec, config, chains=4, jobs=1)
        parallel = run_seeded_chains(spec, config, chains=4, jobs=2)
        assert [_chain_fingerprint(r) for r in serial] == \
            [_chain_fingerprint(r) for r in parallel]

    def test_run_restarts_jobs_equivalence(self, tiny_target):
        def mk():
            return Stoke(tiny_target, _tests(), ["xmm0"],
                         CostConfig(eta=0.0, k=1.0))

        config = SearchConfig(proposals=400, seed=0)
        serial = run_restarts(mk(), config, chains=3, jobs=1)
        parallel = run_restarts(mk(), config, chains=3, jobs=3)
        assert serial.jobs == 1 and parallel.jobs == 3
        assert _chain_fingerprint(serial.best) == \
            _chain_fingerprint(parallel.best)
        assert [_chain_fingerprint(c) for c in serial.chains] == \
            [_chain_fingerprint(c) for c in parallel.chains]

    def test_results_in_seed_order(self, tiny_target):
        spec = _spec(tiny_target)
        results = run_seeded_chains(spec, SearchConfig(proposals=150, seed=9),
                                    chains=3, jobs=2)
        assert [r.seed for r in results] == [9, 10, 11]


class TestStreaming:
    def test_on_result_fires_per_chain(self, tiny_target):
        spec = _spec(tiny_target)
        seen = []
        results = run_seeded_chains(spec, SearchConfig(proposals=150, seed=0),
                                    chains=3, jobs=2,
                                    on_result=lambda r: seen.append(r.seed))
        assert sorted(seen) == [0, 1, 2]
        assert len(results) == 3

    def test_empty_configs(self, tiny_target):
        assert run_chains(_spec(tiny_target), [], jobs=2) == []


class TestTelemetry:
    def test_restart_telemetry(self, tiny_target):
        stoke = Stoke(tiny_target, _tests(), ["xmm0"],
                      CostConfig(eta=0.0, k=1.0))
        result = run_restarts(stoke, SearchConfig(proposals=200, seed=4),
                              chains=2, jobs=1)
        assert isinstance(result, RestartResult)
        telemetry = result.telemetry
        assert [t["seed"] for t in telemetry] == [4, 5]
        for t in telemetry:
            assert t["proposals"] == 200
            assert t["proposals_per_second"] > 0
            assert 0.0 <= t["acceptance_rate"] <= 1.0
            iterations = [i for i, _ in t["best_cost_trace"]]
            assert iterations[0] == 0 and iterations[-1] == 200
            # The trace is monotone non-increasing in best cost.
            costs = [c for _, c in t["best_cost_trace"]]
            assert all(a >= b for a, b in zip(costs, costs[1:]))


# ---------------------------------------------------------------------------
# TaskPool hardening: crash recovery, deadlines, streaming dispatch.
# Task functions must be module-level (pickled by reference into workers).


def _pool_context(spec):
    return {"spec": spec}


def _pool_task(context, item):
    import os as _os
    import signal as _signal
    import time as _time

    kind, value = item
    if kind == "square":
        return value * value
    if kind == "raise":
        raise ValueError(f"bad item {value}")
    if kind == "die":
        # Simulate a segfault/OOM: the worker vanishes mid-task.
        _os.kill(_os.getpid(), _signal.SIGKILL)
    if kind == "sleep":
        _time.sleep(value)
        return value
    raise AssertionError(f"unknown kind {kind}")


class TestTaskPool:
    def _pool(self, jobs=2, **kwargs):
        from repro.core.parallel import TaskPool

        return TaskPool(_pool_context, None, _pool_task, jobs=jobs,
                        **kwargs)

    def test_map_inline(self):
        with self._pool(jobs=1) as pool:
            assert pool.inline
            assert pool.map([("square", i) for i in range(5)]) == \
                [0, 1, 4, 9, 16]

    def test_map_subprocess(self):
        with self._pool(jobs=2) as pool:
            assert not pool.inline
            assert pool.map([("square", i) for i in range(8)]) == \
                [i * i for i in range(8)]

    def test_task_error_propagates(self):
        from repro.core.parallel import TaskError

        with self._pool(jobs=2) as pool:
            with pytest.raises(TaskError, match="bad item 3"):
                pool.map([("square", 1), ("raise", 3), ("square", 2)])

    def test_worker_killed_mid_task_is_reported_and_pool_survives(self):
        # Regression test: a worker SIGKILLed mid-task must be detected,
        # its task reported as a crash, and the pool must keep serving.
        with self._pool(jobs=2) as pool:
            outcomes = pool.run([("square", 1), ("die", 0), ("square", 2)])
            by_key = {o.key: o for o in outcomes}
            assert by_key[0].ok and by_key[0].value == 1
            assert by_key[2].ok and by_key[2].value == 4
            assert not by_key[1].ok
            assert by_key[1].kind == "crash"
            # The pool respawned the dead worker and still works.
            assert pool.map([("square", 6)]) == [36]

    def test_per_task_timeout(self):
        from repro.core.parallel import TaskTimeout

        with self._pool(jobs=2, task_timeout=0.5) as pool:
            outcomes = pool.run([("sleep", 30.0), ("square", 3)])
            by_key = {o.key: o for o in outcomes}
            assert not by_key[0].ok and by_key[0].kind == "timeout"
            assert by_key[1].ok and by_key[1].value == 9
            with pytest.raises(TaskTimeout):
                pool.map([("sleep", 30.0)])

    def test_streaming_submit_poll(self):
        with self._pool(jobs=2) as pool:
            pool.submit("a", ("square", 2))
            pool.submit("b", ("square", 3))
            got = {}
            while len(got) < 2:
                for outcome in pool.poll(timeout=10.0):
                    got[outcome.key] = outcome.value
            assert got == {"a": 4, "b": 9}
            assert pool.in_flight == 0

    def test_submit_after_close_rejected(self):
        pool = self._pool(jobs=1)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit("x", ("square", 1))

    def test_close_kills_workers(self):
        pool = self._pool(jobs=2)
        procs = [w.proc for w in pool._workers]
        assert all(p.is_alive() for p in procs)
        pool.close()
        assert all(not p.is_alive() for p in procs)
