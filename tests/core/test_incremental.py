"""Differential tests for checkpointed-prefix incremental evaluation.

The incremental path (edit-span aware ``CostFunction.cost``) must be
observationally identical to full evaluation: same live-out bits
(including NaN payloads), same signals, same CostResult — for any edit
position, either backend, and any interleaving with full evaluations,
accepts, and checkpoint eviction.
"""

import random

import pytest

from repro.x86.assembler import assemble
from repro.x86.checkpoint import (DEFAULT_STORE_BUDGET, STORE,
                                  checkpoint_store_stats, checkpoint_stride,
                                  clear_checkpoint_store, flags_live_in,
                                  program_writes, resume_boundary,
                                  set_checkpoint_budget, union_writes)
from repro.x86.jit import compile_program
from repro.x86.testcase import uniform_testcases

from repro.core.cost import CostConfig, CostFunction
from repro.core.runner import Runner
from repro.core.search import SearchConfig, Stoke
from repro.core.transforms import Transforms

from tests.conftest import base_testcase, random_program

BACKENDS = ("jit", "emulator", "vector")

# A 12-instruction kernel with register arithmetic, a flags-producing
# compare + conditional move, and stores/loads through the scratch
# segment — every state component a checkpoint must carry.  Padded to 16
# slots so the stride is 4 and edits in the back half resume from
# boundary 8 or 12 (boundary 4 is unusable: flags are live across the
# ucomisd/cmovae pair).
KERNEL = assemble("""
    movq $2.0d, xmm1
    mulsd xmm1, xmm0
    movsd xmm0, 8(rbx)
    ucomisd xmm1, xmm0
    cmovae rax, rcx
    addsd 8(rbx), xmm0
    movapd xmm0, xmm2
    mulsd xmm2, xmm2
    movq $0.5d, xmm3
    mulsd xmm3, xmm2
    subsd xmm1, xmm2
    addsd xmm2, xmm0
""", total_slots=16)

LIVE_OUTS = ("xmm0",)


@pytest.fixture(autouse=True)
def isolated_store():
    """Each test starts from an empty global checkpoint store."""
    clear_checkpoint_store()
    set_checkpoint_budget(DEFAULT_STORE_BUDGET)
    yield
    clear_checkpoint_store()
    set_checkpoint_budget(DEFAULT_STORE_BUDGET)


def kernel_tests(count, seed=5):
    return [base_testcase(seed + i) for i in range(count)]


def make_pair(target, tests, backend="jit", **cfg):
    """(incremental, reference) cost functions over shared tests."""
    config = CostConfig(**cfg)
    inc = CostFunction(target, tests, LIVE_OUTS, config, backend=backend)
    ref = CostFunction(target, tests, LIVE_OUTS, config, backend=backend)
    return inc, ref


class TestStrideAndBoundaries:
    def test_short_programs_have_no_checkpoints(self):
        for n in range(4):
            assert checkpoint_stride(n) == 0

    def test_stride_tracks_sqrt(self):
        assert checkpoint_stride(4) == 2
        assert checkpoint_stride(16) == 4
        assert checkpoint_stride(37) == 6
        assert checkpoint_stride(64) == 8

    def test_flags_liveness_brackets_the_consumer(self):
        program = assemble("""
            ucomisd xmm1, xmm0
            cmovae rcx, rax
            addsd xmm0, xmm0
        """)
        # cmovae at 1 reads the flags ucomisd at 0 writes: only a resume
        # at index 1 would need prefix flag values.
        assert flags_live_in(program) == (False, True, False, False)

    def test_resume_boundary_steps_below_flags_dependence(self):
        lines = ["addsd xmm0, xmm0"] * 16
        lines[3] = "ucomisd xmm1, xmm0"
        lines[5] = "cmovae rcx, rax"
        program = assemble("\n".join(lines))
        assert checkpoint_stride(16) == 4
        # Edit at 9: boundary 8 has no live-in flags.
        assert resume_boundary(program, 9) == 8
        # Edit at 6: raw boundary 4 sits between ucomisd and cmovae,
        # where flags are live — no usable boundary remains.
        assert resume_boundary(program, 6) == 0
        # Edits at or below index 0 cannot be resumed.
        assert resume_boundary(program, 0) == 0

    def test_union_writes(self):
        a = ((1,), (0, 2), (0,), False)
        b = ((1, 3), (2,), (2,), True)
        assert union_writes(a, b) == ((1, 3), (0, 2), (0, 2), True)

    def test_program_writes_covers_kernel_defs(self):
        gp, xl, xh, mem = program_writes(KERNEL)
        assert mem  # the movsd store
        assert 1 in gp  # cmovae writes rcx
        assert {0, 1, 2, 3}.issubset(set(xl))
        assert xl == xh  # conservative: XMM defs count both halves


class TestSuffixEntryPoints:
    """run_from / run_batch_from == full execution, both backends."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(6))
    def test_prefix_plus_suffix_equals_full_run(self, backend, seed):
        program = random_program(seed, 12)
        flags = flags_live_in(program)
        runner = Runner(LIVE_OUTS, backend=backend)
        prepared = runner.prepare(program)
        for tc in kernel_tests(3, seed=40 + seed):
            full = tc.build_state()
            if backend == "emulator":
                out_full = runner._emulator.run(program, full)
            else:
                out_full = prepared.run(full)
            for boundary in range(1, 12):
                if flags[boundary]:
                    continue  # not a resumable split point
                state = tc.build_state()
                if backend == "emulator":
                    emulator = runner._emulator
                    head = emulator.run_from(program, state, 0, boundary)
                    tail = (emulator.run_from(program, state, boundary)
                            if head.ok else head)
                else:
                    head = prepared.run_from(0, state, stop=boundary)
                    tail = (prepared.run_from(boundary, state)
                            if head.ok else head)
                if not out_full.ok:
                    # Straight-line code: a fault in either piece must
                    # reproduce the full run's signal.
                    assert (head.signal or tail.signal) == out_full.signal
                    continue
                assert head.ok and tail.ok
                assert state.gp == full.gp
                assert state.xmm_lo == full.xmm_lo
                assert state.xmm_hi == full.xmm_hi
                assert [img for _seg, img in
                        state.mem.snapshot_writable()] == \
                    [img for _seg, img in full.mem.snapshot_writable()]

    def test_run_batch_from_zero_is_run_batch(self):
        prepared = compile_program(KERNEL)
        tests = kernel_tests(6)
        a = [tc.build_state() for tc in tests]
        b = [tc.build_state() for tc in tests]
        assert prepared.run_batch_from(0, a) == prepared.run_batch(b)
        assert [s.gp for s in a] == [s.gp for s in b]
        assert [s.xmm_lo for s in a] == [s.xmm_lo for s in b]

    def test_suffix_segments_share_the_compile_cache(self):
        prepared = compile_program(KERNEL)
        assert prepared.segment(4) is prepared.segment(4)
        assert prepared.resume_boundary(9) == 8
        assert prepared.resume_boundary(5) == 0  # flags live at 4


def walk_differential(backend, seed, steps=120, accept_every=7):
    """Random MCMC-style walk asserting incremental == full per step."""
    tests = kernel_tests(10, seed=seed)
    inc, ref = make_pair(KERNEL, tests, backend=backend)
    transforms = Transforms(KERNEL)
    rng = random.Random(seed)
    current = KERNEL
    for step in range(steps):
        proposal, _move, span = transforms.propose(rng, current)
        if proposal is None:
            continue
        got = inc.cost(proposal, edit_index=span)
        want = ref.cost(proposal)
        assert got == want, (
            f"step {step}: incremental {got} != full {want} "
            f"(edit span {span})")
        if step % accept_every == 0:
            current = proposal
            inc.set_current(proposal)
    assert inc.incremental_hits > 0


class TestIncrementalCostDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", (11, 23))
    def test_walk_matches_full_evaluation(self, backend, seed):
        walk_differential(backend, seed)

    def test_walk_with_sum_reduction_and_eta(self):
        tests = kernel_tests(8, seed=77)
        inc, ref = make_pair(KERNEL, tests, reduction="sum", eta=4.0)
        transforms = Transforms(KERNEL)
        rng = random.Random(77)
        for _step in range(80):
            proposal, _move, span = transforms.propose(rng, KERNEL)
            if proposal is None:
                continue
            assert inc.cost(proposal, edit_index=span) == ref.cost(proposal)

    def test_interleaved_full_and_incremental_calls(self):
        # The pooled states are shared by both paths; mixing them must
        # not leak state in either direction.
        tests = kernel_tests(8, seed=31)
        inc, ref = make_pair(KERNEL, tests)
        transforms = Transforms(KERNEL)
        rng = random.Random(31)
        for step in range(60):
            proposal, _move, span = transforms.propose(rng, KERNEL)
            if proposal is None:
                continue
            edit = span if step % 2 == 0 else None
            assert inc.cost(proposal, edit_index=edit) == ref.cost(proposal)

    def test_nan_payloads_survive_the_checkpoint_path(self):
        # A non-canonical quiet-NaN payload flowing through prefix and
        # suffix must read back bit-identically on the suffix path.
        payload_nan = 0x7FFC0000DEADBEEF
        tests = [base_testcase(3).replace("xmm0", payload_nan),
                 base_testcase(4).replace("xmm0", payload_nan | (1 << 63))]
        program = assemble("\n".join(["addsd xmm0, xmm0"] * 4
                                     + ["mulsd xmm1, xmm0"] * 4))
        runner = Runner(LIVE_OUTS)
        prepared = runner.prepare(program)
        full = runner.run_batch(prepared, tests)
        boundary = resume_boundary(program, 5)
        assert boundary > 0
        states = [tc.build_state() for tc in tests]
        for state in states:
            assert prepared.run_from(0, state, stop=boundary).ok
        assert prepared.run_batch_from(boundary, states) == [None, None]
        assert [runner.values_of(s) for s in states] == \
            [values for values, _sig in full]

    def test_early_reject_paths_agree(self):
        tests = kernel_tests(10, seed=13)
        inc, ref = make_pair(KERNEL, tests)
        transforms = Transforms(KERNEL)
        rng = random.Random(13)
        threshold = inc.cost(KERNEL).total + 1.0
        for _step in range(80):
            proposal, _move, span = transforms.propose(rng, KERNEL)
            if proposal is None:
                continue
            got = inc.cost(proposal, early_reject_above=threshold,
                           edit_index=span)
            want = ref.cost(proposal, early_reject_above=threshold)
            assert got == want


class TestFaultingPrograms:
    def _faulting_kernel(self, fault_slot):
        # rax holds an arbitrary 64-bit pattern in base_testcase, so a
        # load through it faults.
        lines = ["addsd xmm0, xmm0"] * 12
        lines[fault_slot] = "movsd (rax), xmm3"
        return assemble("\n".join(lines))

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("fault_slot", (1, 5, 10))
    def test_faults_agree_with_full_evaluation(self, backend, fault_slot):
        tests = kernel_tests(6, seed=50)
        target = assemble("\n".join(["addsd xmm0, xmm0"] * 12))
        inc, ref = make_pair(target, tests, backend=backend)
        rewrite = self._faulting_kernel(fault_slot)
        for edit in (3, 6, 9, 11):
            got = inc.cost(rewrite, edit_index=edit)
            inc._cache.clear()  # force re-evaluation at the next edit
            assert got == ref.cost(rewrite)
            ref._cache.clear()
            assert got.signalled

    def test_prefix_fault_sentinel_is_reused(self):
        tests = kernel_tests(4, seed=51)
        target = assemble("\n".join(["addsd xmm0, xmm0"] * 12))
        inc, _ = make_pair(target, tests)
        rewrite = self._faulting_kernel(1)  # fault inside every prefix
        first = inc.cost(rewrite, edit_index=9)
        captures = inc.incremental_captures
        assert captures == len(tests)
        # Same prefix, different suffix edit: the fault sentinel must
        # satisfy the lookup without re-executing the prefix.
        other = rewrite.with_slot(10, assemble("mulsd xmm0, xmm0").slots[0])
        second = inc.cost(other, edit_index=10)
        assert first.signalled and second.signalled
        assert inc.incremental_captures == captures


class TestCheckpointLifecycle:
    def test_accept_prunes_incompatible_prefixes(self):
        tests = kernel_tests(6)
        inc, _ = make_pair(KERNEL, tests)
        proposal = KERNEL.with_slot(9, assemble("mulsd xmm0, xmm0").slots[0])
        inc.cost(proposal, edit_index=9)  # resumes from boundary 8
        assert inc.incremental_hits == 1
        assert len(STORE) == len(tests)
        # Accept a program with a different slot 0: every checkpoint is
        # keyed by a prefix the new current program no longer shares.
        divergent = KERNEL.with_slot(0, assemble("movq $3.0d, xmm1").slots[0])
        inc.set_current(divergent)
        assert len(STORE) == 0
        assert all(not tc._checkpoints for tc in tests)
        before = checkpoint_store_stats()["invalidated"]
        assert before == len(tests)
        # A second prune with the same program is a no-op.
        inc.set_current(divergent)
        assert checkpoint_store_stats()["invalidated"] == before

    def test_accept_keeps_shared_prefixes(self):
        tests = kernel_tests(6)
        inc, _ = make_pair(KERNEL, tests)
        proposal = KERNEL.with_slot(9, assemble("mulsd xmm0, xmm0").slots[0])
        inc.cost(proposal, edit_index=9)
        # The proposal shares slots[:8] with KERNEL, so accepting it must
        # keep every boundary-8 checkpoint warm.
        inc.set_current(proposal)
        assert len(STORE) == len(tests)
        assert checkpoint_store_stats()["invalidated"] == 0

    def test_store_lru_respects_byte_budget(self):
        set_checkpoint_budget(2 * 1024)
        tests = kernel_tests(8, seed=9)
        inc, ref = make_pair(KERNEL, tests)
        transforms = Transforms(KERNEL)
        rng = random.Random(9)
        current = KERNEL
        for _step in range(60):
            proposal, _move, span = transforms.propose(rng, current)
            if proposal is None:
                continue
            assert inc.cost(proposal, edit_index=span) == ref.cost(proposal)
            current = proposal  # never prune: prefixes accumulate
        stats = checkpoint_store_stats()
        assert stats["evictions"] > 0
        assert stats["bytes"] <= 2 * 1024 or stats["entries"] <= 1
        # Evicted entries were deleted from their owning tests too.
        assert sum(len(tc._checkpoints) for tc in tests) == stats["entries"]

    def test_duplicate_test_objects_fall_back(self):
        tc = base_testcase(1)
        inc, ref = make_pair(KERNEL, [tc, tc])
        rewrite = KERNEL.with_slot(8, assemble("mulsd xmm1, xmm0").slots[0])
        assert inc.cost(rewrite, edit_index=8) == ref.cost(rewrite)
        assert inc.incremental_hits == 0
        assert inc.incremental_fallbacks == 1

    def test_edit_at_zero_falls_back(self):
        tests = kernel_tests(4)
        inc, ref = make_pair(KERNEL, tests)
        rewrite = KERNEL.with_slot(0, assemble("movq $4.0d, xmm1").slots[0])
        assert inc.cost(rewrite, edit_index=0) == ref.cost(rewrite)
        assert inc.incremental_fallbacks == 1

    def test_short_programs_fall_back(self):
        short = assemble("addsd xmm0, xmm0\nmulsd xmm1, xmm0")
        tests = kernel_tests(4)
        inc, ref = make_pair(short, tests)
        rewrite = short.with_slot(1, assemble("subsd xmm1, xmm0").slots[0])
        assert inc.cost(rewrite, edit_index=1) == ref.cost(rewrite)
        assert inc.incremental_fallbacks == 1


class TestAdaptiveOrderingStability:
    def test_promote_skip_window(self):
        cf = CostFunction(KERNEL, kernel_tests(8), LIVE_OUTS, CostConfig())
        # Index 0 is always a skip (already at the front).
        cf._promote(0)
        assert cf.promote_skips == 1 and cf.promote_moves == 0
        # A fresh index is a real move...
        victim = id(cf.tests[5])
        cf._promote(5)
        assert cf.promote_moves == 1
        assert id(cf.tests[0]) == victim
        # ...but re-promoting it from inside the stability window is
        # skipped: the ladder's order is effectively unchanged.
        for seq in (cf.tests, cf.target_outputs, cf._expected):
            seq.insert(1, seq.pop(0))
        cf._promote(1)
        assert cf.promote_skips == 2 and cf.promote_moves == 1
        # Beyond the window the same test is moved again.
        far = cf._PROMOTE_WINDOW + 2
        for seq in (cf.tests, cf.target_outputs, cf._expected):
            seq.insert(far, seq.pop(1))
        cf._promote(far)
        assert cf.promote_moves == 2
        assert id(cf.tests[0]) == victim


class TestDceMemoization:
    def test_dce_cache_counts_hits(self, tiny_target):
        tests = uniform_testcases(random.Random(0), 8, {"xmm0": (-4.0, 4.0)})
        stoke = Stoke(tiny_target, tests, ["xmm0"], CostConfig())
        cleaned = stoke._dce(tiny_target)
        assert stoke._dce_misses == 1 and stoke._dce_hits == 0
        assert stoke._dce(tiny_target) is cleaned
        assert stoke._dce_hits == 1

    def test_dce_cache_is_bounded(self, tiny_target):
        tests = uniform_testcases(random.Random(0), 8, {"xmm0": (-4.0, 4.0)})
        stoke = Stoke(tiny_target, tests, ["xmm0"], CostConfig())
        stoke.DCE_CACHE_CAP = 4
        for seed in range(10):
            stoke._dce(random_program(seed, 5))
        assert len(stoke._dce_cache) <= 4


class TestSearchEquivalence:
    def test_incremental_search_is_bit_identical(self, tiny_target):
        tests = uniform_testcases(random.Random(0), 12, {"xmm0": (-4.0, 4.0)})
        results = []
        for incremental in (False, True):
            stoke = Stoke(tiny_target, tests, ["xmm0"],
                          CostConfig(eta=1e12, k=1.0))
            config = SearchConfig(proposals=800, seed=21, extra_slots=4,
                                  incremental=incremental)
            results.append(stoke.optimize(config))
        off, on = results
        assert on.best_cost == off.best_cost
        assert on.trace == off.trace
        assert on.stats.accepted == off.stats.accepted
        assert on.stats.moves_accepted == off.stats.moves_accepted
        assert on.best_correct_latency == off.best_correct_latency
        assert on.stats.incremental["hits"] > 0
        assert off.stats.incremental["hits"] == 0

    def test_empty_init_disables_incremental(self, tiny_target):
        tests = uniform_testcases(random.Random(0), 6, {"xmm0": (-4.0, 4.0)})
        stoke = Stoke(tiny_target, tests, ["xmm0"],
                      CostConfig(eta=1e12, k=0.0))
        result = stoke.optimize(SearchConfig(proposals=200, seed=3,
                                             init="empty"))
        assert result.stats.incremental["hits"] == 0

    def test_telemetry_exposes_incremental_counters(self, tiny_target):
        tests = uniform_testcases(random.Random(0), 6, {"xmm0": (-4.0, 4.0)})
        stoke = Stoke(tiny_target, tests, ["xmm0"], CostConfig(eta=1e12))
        result = stoke.optimize(SearchConfig(proposals=300, seed=1))
        tele = result.telemetry
        for key in ("hits", "fallbacks", "captures", "checkpoint_bytes",
                    "checkpoint_entries", "store_evictions"):
            assert key in tele["incremental"]
        assert set(tele["dce_cache"]) == {"hits", "misses"}
        assert set(tele["test_ordering"]) == {"moves", "skips"}


class TestVectorCheckpointComposition:
    """Checkpoint-slice composition on the vector backend: resuming a
    vectorized batch from a prefix boundary must equal full vector
    execution and equal both scalar backends, bit for bit."""

    def _full_reference(self, backend, program, tests):
        runner = Runner(LIVE_OUTS, backend=backend)
        return runner.run_batch(runner.prepare(program), tests)

    def test_vector_resume_equals_full_across_backends(self):
        from repro.x86.vector import vectorize_program

        tests = kernel_tests(8, seed=61)
        refs = [self._full_reference(b, KERNEL, tests)
                for b in ("jit", "emulator", "vector")]
        assert refs[0] == refs[1] == refs[2]
        runner = Runner(LIVE_OUTS, backend="vector")
        vp = vectorize_program(KERNEL)
        flags = flags_live_in(KERNEL)
        for boundary in range(1, 12):
            if flags[boundary]:
                continue
            states = [tc.build_state() for tc in tests]
            for state in states:
                assert vp.run_from(0, state, stop=boundary).ok
            signals = vp.run_batch_from(boundary, states)
            got = [(None, sig) if sig is not None
                   else (runner.values_of(state), None)
                   for state, sig in zip(states, signals)]
            assert got == refs[0], f"boundary {boundary}"

    def test_vector_resume_with_mid_program_faulting_lane(self):
        from repro.x86.signals import Signal
        from repro.x86.vector import vectorize_program

        # Slot 6 (inside the suffix for boundary 4) loads through rax;
        # one lane carries a wild pointer and must fault there, after
        # the resume point, while the other lanes complete.
        lines = ["addsd xmm0, xmm0"] * 12
        lines[6] = "movsd (rax), xmm3"
        program = assemble("\n".join(lines))
        good = [base_testcase(i).replace("rax", 0x4000) for i in range(3)]
        bad = base_testcase(7).replace("rax", 0xDEAD0000)
        tests = [good[0], bad, good[1], good[2]]
        refs = [self._full_reference(b, program, tests)
                for b in ("jit", "emulator", "vector")]
        assert refs[0] == refs[1] == refs[2]
        assert refs[0][1] == (None, Signal.SIGSEGV)
        runner = Runner(LIVE_OUTS, backend="vector")
        vp = vectorize_program(program)
        boundary = resume_boundary(program, 5)
        assert 0 < boundary <= 6
        states = [tc.build_state() for tc in tests]
        for state in states:
            assert vp.run_from(0, state, stop=boundary).ok
        signals = vp.run_batch_from(boundary, states)
        got = [(None, sig) if sig is not None
               else (runner.values_of(state), None)
               for state, sig in zip(states, signals)]
        assert got == refs[0]

    def test_vector_incremental_cost_matches_scalar_backends(self):
        # The full incremental path (checkpoint capture, suffix resume,
        # promise-scoped pooled restore) through CostFunction must give
        # identical CostResults on all three backends.
        tests = kernel_tests(8, seed=67)
        transforms = Transforms(KERNEL)
        rng = random.Random(67)
        proposals = []
        current = KERNEL
        while len(proposals) < 40:
            proposal, _move, span = transforms.propose(rng, current)
            if proposal is not None:
                proposals.append((proposal, span))
        per_backend = []
        for backend in ("jit", "emulator", "vector"):
            clear_checkpoint_store()
            inc, ref = make_pair(KERNEL, tests, backend=backend)
            costs = []
            for proposal, span in proposals:
                got = inc.cost(proposal, edit_index=span)
                assert got == ref.cost(proposal)
                costs.append(got)
            assert inc.incremental_hits > 0
            per_backend.append(costs)
        assert per_backend[0] == per_backend[1] == per_backend[2]
