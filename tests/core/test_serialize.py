"""JSON round-trips for results, programs, and checkpoints (satellite of
the campaign service: everything the ledger persists must survive a
serialize/parse cycle bit-for-bit)."""

import json
import math
import random

import pytest

from repro.core import CostConfig, SearchConfig, Stoke, run_restarts
from repro.core import serialize as S
from repro.core.restarts import RestartResult
from repro.core.result import SearchResult
from repro.kernels.aek.vector import AEK_KERNELS, AEK_REWRITES
from repro.kernels.libimf import LIBIMF_KERNELS
from repro.validation.validator import ValidationConfig, Validator
from repro.x86.assembler import assemble
from repro.x86.testcase import uniform_testcases

TARGET = assemble("movq $2.0d, xmm1\nmulsd xmm1, xmm0\naddsd xmm0, xmm0\n")


def _roundtrip(doc):
    """Force the document through actual JSON text."""
    return json.loads(json.dumps(doc))


class TestScalars:
    @pytest.mark.parametrize("value", [0.0, -1.5, 1e300, float("inf"),
                                       float("-inf")])
    def test_float_roundtrip(self, value):
        assert S.dec_float(_roundtrip(S.enc_float(value))) == value

    def test_nan_roundtrip(self):
        out = S.dec_float(_roundtrip(S.enc_float(float("nan"))))
        assert math.isnan(out)

    def test_none_roundtrip(self):
        assert S.enc_float(None) is None
        assert S.dec_float(None) is None

    def test_nonfinite_is_strict_json(self):
        # canonical_json refuses NaN literals; the encoding must not
        # produce any.
        S.canonical_json({"v": S.enc_float(float("inf"))})

    def test_rng_state_roundtrip(self):
        rng = random.Random(1234)
        rng.gauss(0, 1)  # populate gauss_next
        state = rng.getstate()
        restored = S.dec_rng_state(_roundtrip(S.enc_rng_state(state)))
        assert restored == state
        clone = random.Random()
        clone.setstate(restored)
        assert [clone.random() for _ in range(5)] == \
            [rng.random() for _ in range(5)]


class TestPrograms:
    @pytest.mark.parametrize("name", sorted(AEK_KERNELS))
    def test_aek_kernels_roundtrip(self, name):
        program = AEK_KERNELS[name]().program
        out = S.program_from_dict(_roundtrip(S.program_to_dict(program)))
        assert out.to_text(include_unused=True) == \
            program.to_text(include_unused=True)
        assert len(out.slots) == len(program.slots)

    @pytest.mark.parametrize("name", sorted(LIBIMF_KERNELS))
    def test_libimf_kernels_roundtrip(self, name):
        program = LIBIMF_KERNELS[name]().program
        out = S.program_from_dict(_roundtrip(S.program_to_dict(program)))
        assert out.to_text(include_unused=True) == \
            program.to_text(include_unused=True)

    @pytest.mark.parametrize("name", sorted(AEK_REWRITES))
    def test_aek_rewrites_roundtrip(self, name):
        program = AEK_REWRITES[name]()
        out = S.program_from_dict(_roundtrip(S.program_to_dict(program)))
        assert out.to_text(include_unused=True) == \
            program.to_text(include_unused=True)

    def test_none_program(self):
        assert S.program_to_dict(None) is None
        assert S.program_from_dict(None) is None

    def test_slot_count_mismatch_rejected(self):
        # A header slot count below the instruction count cannot be
        # honored by assemble; the round-trip must fail loudly.
        doc = S.program_to_dict(TARGET)
        doc["slots"] = 1
        with pytest.raises(S.SchemaError):
            S.program_from_dict(doc)


class TestResults:
    def _search_result(self, proposals=300, seed=5):
        tests = uniform_testcases(random.Random(0), 8, {"xmm0": (-4, 4)})
        stoke = Stoke(TARGET, tests, ["xmm0"], CostConfig(eta=0.0, k=1.0))
        return stoke.search(SearchConfig(proposals=proposals, seed=seed))

    def test_search_result_roundtrip(self):
        result = self._search_result()
        out = SearchResult.from_dict(_roundtrip(result.to_dict()))
        assert out.best_cost == result.best_cost
        assert out.seed == result.seed
        assert out.trace == result.trace
        assert out.stats.proposals == result.stats.proposals
        assert out.stats.accepted == result.stats.accepted
        assert out.stats.moves_proposed == result.stats.moves_proposed
        assert out.best_program.to_text(include_unused=True) == \
            result.best_program.to_text(include_unused=True)
        assert (out.best_correct is None) == (result.best_correct is None)
        if result.best_correct is not None:
            assert out.best_correct.to_text() == \
                result.best_correct.to_text()
            assert out.best_correct_latency == result.best_correct_latency

    def test_search_result_version_check(self):
        doc = self._search_result(proposals=50).to_dict()
        doc["version"] = 999
        with pytest.raises(S.SchemaError):
            SearchResult.from_dict(doc)

    def test_restart_result_roundtrip(self):
        tests = uniform_testcases(random.Random(0), 8, {"xmm0": (-4, 4)})
        stoke = Stoke(TARGET, tests, ["xmm0"], CostConfig(eta=0.0, k=1.0))
        restarts = run_restarts(stoke, SearchConfig(proposals=200, seed=2),
                                chains=2, jobs=1)
        out = RestartResult.from_dict(_roundtrip(restarts.to_dict()))
        assert out.jobs == restarts.jobs
        assert len(out.chains) == len(restarts.chains)
        assert out.best.seed == restarts.best.seed
        assert [c.best_cost for c in out.chains] == \
            [c.best_cost for c in restarts.chains]

    def test_validation_result_roundtrip(self):
        spec = AEK_KERNELS["dot"]()
        validator = Validator(spec.program, AEK_REWRITES["dot"](),
                              spec.live_outs, dict(spec.ranges),
                              spec.base_testcase)
        result = validator.validate(ValidationConfig(
            eta=1.0, max_proposals=200, seed=3, keep_chain=True))
        doc = _roundtrip(S.validation_result_to_dict(result))
        base = spec.base_testcase()
        out = S.validation_result_from_dict(doc, segments=base.segments)
        assert out.max_err == result.max_err
        assert out.samples == result.samples
        assert out.passed == result.passed
        assert out.z_scores == result.z_scores
        assert out.chain == result.chain
        if result.argmax is not None:
            assert out.argmax.inputs == result.argmax.inputs


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert S.canonical_json({"b": 1, "a": 2}) == \
            S.canonical_json({"a": 2, "b": 1})

    def test_no_whitespace(self):
        assert " " not in S.canonical_json({"a": [1, 2], "b": {"c": 3}})

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            S.canonical_json({"v": float("nan")})
