"""The backend registry: one source of truth for backend names."""

import pytest

from repro.core.backends import known_backends, resolve_backend
from repro.core.runner import Runner
from repro.service.jobs import search_payload


def test_known_backends_lists_all_three():
    assert known_backends() == ("emulator", "jit", "vector")


def test_resolve_backend_properties():
    assert resolve_backend("jit").compiled
    assert resolve_backend("vector").compiled
    assert not resolve_backend("emulator").compiled


def test_unknown_backend_error_lists_choices():
    with pytest.raises(ValueError) as exc:
        resolve_backend("jitt")
    message = str(exc.value)
    assert "jitt" in message
    for name in known_backends():
        assert name in message


def test_runner_rejects_unknown_backend_with_choices():
    with pytest.raises(ValueError, match="emulator, jit, vector"):
        Runner(["xmm0"], backend="vectr")


def test_search_payload_validates_backend_at_enqueue_time():
    # A typo'd backend must fail submission, not a worker hours later.
    with pytest.raises(ValueError, match="known backends"):
        search_payload("sin", eta=0.0, seed=0, proposals=10,
                       testcases=4, tests_seed=0, backend="vectorr")
    payload = search_payload("sin", eta=0.0, seed=0, proposals=10,
                             testcases=4, tests_seed=0, backend="vector")
    assert payload["backend"] == "vector"
