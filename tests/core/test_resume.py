"""Checkpoint/resume bit-identity across the three resumable engines.

The campaign service's crash-recovery story rests on one property: a
run interrupted at a checkpoint and resumed must be indistinguishable
from the uninterrupted run — same best program, same counters, same
sample stream, bit for bit (wall-clock timing excluded).  These tests
interrupt mid-run, push the checkpoint through actual JSON, resume in a
fresh engine instance, and compare everything observable.
"""

import json
import random

import pytest

from repro.core import CostConfig, SearchConfig, Stoke
from repro.core.search import SearchCheckpoint
from repro.kernels.aek.vector import AEK_KERNELS
from repro.kernels.libimf import sin_kernel
from repro.validation.strategies import ValidationMcmc, ValidationRandom
from repro.validation.validator import (ValidationCheckpoint,
                                        ValidationConfig, Validator)
from repro.x86.assembler import assemble
from repro.x86.testcase import uniform_testcases

TARGET = assemble("movq $2.0d, xmm1\nmulsd xmm1, xmm0\naddsd xmm0, xmm0\n")


def _stoke(backend):
    tests = uniform_testcases(random.Random(0), 8, {"xmm0": (-4, 4)})
    return Stoke(TARGET, tests, ["xmm0"], CostConfig(eta=0.0, k=1.0),
                 backend=backend)


def _same_search(a, b):
    assert a.best_cost == b.best_cost
    assert a.trace == b.trace
    assert a.stats.proposals == b.stats.proposals
    assert a.stats.accepted == b.stats.accepted
    assert a.stats.invalid_proposals == b.stats.invalid_proposals
    assert a.stats.moves_proposed == b.stats.moves_proposed
    assert a.stats.moves_accepted == b.stats.moves_accepted
    assert a.best_program.to_text(include_unused=True) == \
        b.best_program.to_text(include_unused=True)
    assert (a.best_correct is None) == (b.best_correct is None)
    if a.best_correct is not None:
        assert a.best_correct.to_text(include_unused=True) == \
            b.best_correct.to_text(include_unused=True)
        assert a.best_correct_latency == b.best_correct_latency


class TestSearchResume:
    @pytest.mark.parametrize("backend", ["jit", "emulator"])
    def test_bit_identical_resume(self, backend):
        config = SearchConfig(proposals=600, seed=11)
        full = _stoke(backend).search(config)

        checkpoints = []
        _stoke(backend).search(config, checkpoint_every=200,
                               on_checkpoint=checkpoints.append)
        assert [c.iteration for c in checkpoints] == [200, 400]

        # The checkpoint must survive real JSON, not just stay in memory.
        doc = json.loads(json.dumps(checkpoints[-1].to_dict()))
        resumed = _stoke(backend).search(
            config, resume=SearchCheckpoint.from_dict(doc))
        _same_search(full, resumed)

    def test_resume_from_each_checkpoint(self):
        config = SearchConfig(proposals=500, seed=7)
        full = _stoke("jit").search(config)
        checkpoints = []
        _stoke("jit").search(config, checkpoint_every=100,
                             on_checkpoint=checkpoints.append)
        for checkpoint in checkpoints:
            resumed = _stoke("jit").search(config, resume=checkpoint)
            _same_search(full, resumed)

    def test_config_echo_mismatch_rejected(self):
        config = SearchConfig(proposals=300, seed=1)
        checkpoints = []
        _stoke("jit").search(config, checkpoint_every=100,
                             on_checkpoint=checkpoints.append)
        other = SearchConfig(proposals=300, seed=2)
        with pytest.raises(ValueError):
            _stoke("jit").search(other, resume=checkpoints[0])

    def test_no_checkpoint_at_final_iteration(self):
        config = SearchConfig(proposals=200, seed=1)
        checkpoints = []
        _stoke("jit").search(config, checkpoint_every=200,
                             on_checkpoint=checkpoints.append)
        assert checkpoints == []


class TestValidationResume:
    @pytest.mark.parametrize("strategy_cls", [ValidationMcmc,
                                              ValidationRandom])
    def test_bit_identical_resume(self, strategy_cls):
        spec = sin_kernel(degree=11)
        rewrite = sin_kernel(degree=5).program

        def validator():
            return Validator(spec.program, rewrite, spec.live_outs,
                             dict(spec.ranges), spec.base_testcase)

        config = ValidationConfig(eta=1.0, max_proposals=400,
                                  min_samples=10_000, seed=7,
                                  keep_chain=True)
        strategy = strategy_cls()
        full = validator().validate(config, strategy=strategy)
        assert full.max_err > 0  # the test is vacuous on a zero chain

        checkpoints = []
        validator().validate(config, strategy=strategy,
                             checkpoint_every=100,
                             on_checkpoint=checkpoints.append)
        assert checkpoints
        doc = json.loads(json.dumps(checkpoints[-1].to_dict()))
        resumed = validator().validate(
            config, strategy=strategy,
            resume=ValidationCheckpoint.from_dict(doc))
        assert resumed.max_err == full.max_err
        assert resumed.samples == full.samples
        assert resumed.z_scores == full.z_scores
        assert resumed.trace == full.trace
        assert resumed.chain == full.chain
        assert resumed.argmax.inputs == full.argmax.inputs

    def test_config_echo_mismatch_rejected(self):
        spec = AEK_KERNELS["dot"]()
        validator = Validator(spec.program, spec.program, spec.live_outs,
                              dict(spec.ranges), spec.base_testcase)
        checkpoints = []
        validator.validate(ValidationConfig(max_proposals=200, seed=1),
                           checkpoint_every=64,
                           on_checkpoint=checkpoints.append)
        with pytest.raises(ValueError):
            validator.validate(ValidationConfig(max_proposals=200, seed=9),
                               resume=checkpoints[0])


class TestBnBResume:
    def _verifier(self):
        from repro.verify.bnb import BnBVerifier

        spec = sin_kernel(degree=11)
        rewrite = sin_kernel(degree=7).program
        return BnBVerifier(spec.program, rewrite, spec.live_outs,
                           dict(spec.ranges))

    def test_bit_identical_resume(self):
        from repro.verify.bnb import BnBCheckpoint, BnBConfig

        config = BnBConfig(max_boxes=48, jobs=1)
        full = self._verifier().run(config)

        checkpoints = []
        self._verifier().run(config, checkpoint_rounds=4,
                             on_checkpoint=checkpoints.append)
        assert checkpoints
        doc = json.loads(json.dumps(checkpoints[-1].to_dict()))
        resumed = self._verifier().run(
            config, resume=BnBCheckpoint.from_dict(doc))

        assert resumed.bound_ulps == full.bound_ulps
        assert resumed.boxes_explored == full.boxes_explored
        assert resumed.boxes_pruned == full.boxes_pruned
        assert resumed.complete == full.complete
        assert resumed.termination == full.termination
        assert resumed.leaf_bounds == full.leaf_bounds
        assert [leaf.bounds for leaf in resumed.leaves] == \
            [leaf.bounds for leaf in full.leaves]

    def test_certificates_bit_identical(self):
        from repro.core.serialize import canonical_json
        from repro.verify.bnb import BnBCheckpoint, BnBConfig

        config = BnBConfig(max_boxes=32, jobs=1)

        def cert_doc(verifier, result):
            doc = verifier.certificate(result, config=config).to_dict()
            doc["stats"]["wall_time"] = 0.0
            return canonical_json(doc)

        v1 = self._verifier()
        full = v1.run(config)
        checkpoints = []
        self._verifier().run(config, checkpoint_rounds=3,
                             on_checkpoint=checkpoints.append)
        v2 = self._verifier()
        resumed = v2.run(config, resume=BnBCheckpoint.from_dict(
            json.loads(json.dumps(checkpoints[-1].to_dict()))))
        assert cert_doc(v1, full) == cert_doc(v2, resumed)
