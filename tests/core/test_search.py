"""Tests for the search driver, MCMC machinery, and strategies."""

import math
import random

import pytest

from repro.x86.assembler import assemble
from repro.x86.testcase import uniform_testcases

from repro.core.cost import CostConfig
from repro.core.mcmc import (
    acceptance_probability,
    metropolis_accept,
    rejection_threshold,
)
from repro.core.perf import LatencyPerf, speedup
from repro.core.search import SearchConfig, Stoke
from repro.core.strategies import (
    AnnealStrategy,
    HillClimbStrategy,
    McmcStrategy,
    RandomStrategy,
    make_strategy,
)


class TestMetropolis:
    def test_downhill_always_accepted(self):
        assert acceptance_probability(10.0, 5.0) == 1.0

    def test_uphill_probability(self):
        assert acceptance_probability(0.0, 1.0, beta=1.0) == \
            pytest.approx(math.exp(-1.0))

    def test_beta_scales(self):
        assert acceptance_probability(0.0, 1.0, beta=2.0) == \
            pytest.approx(math.exp(-2.0))

    def test_underflow_guard(self):
        assert acceptance_probability(0.0, 1e6) == 0.0

    def test_metropolis_accept_statistics(self):
        rng = random.Random(0)
        accepts = sum(metropolis_accept(rng, 0.0, 1.0) for _ in range(5000))
        assert abs(accepts / 5000 - math.exp(-1.0)) < 0.03

    def test_rejection_threshold(self):
        assert rejection_threshold(10.0, beta=1.0) == 56.0
        assert rejection_threshold(10.0, beta=0.0) == math.inf


class TestStrategies:
    def test_factory(self):
        assert isinstance(make_strategy("mcmc"), McmcStrategy)
        assert isinstance(make_strategy("hill"), HillClimbStrategy)
        assert isinstance(make_strategy("rand"), RandomStrategy)
        assert isinstance(make_strategy("anneal"), AnnealStrategy)
        with pytest.raises(ValueError):
            make_strategy("quantum")

    def test_hill_rejects_uphill(self):
        strategy = HillClimbStrategy()
        rng = random.Random(0)
        assert strategy.accept(rng, 1.0, 1.0, 0, 10)
        assert not strategy.accept(rng, 1.0, 1.01, 0, 10)

    def test_random_accepts_everything(self):
        strategy = RandomStrategy()
        assert strategy.accept(random.Random(0), 0.0, 1e9, 0, 10)

    def test_anneal_cools(self):
        strategy = AnnealStrategy(t_start=64.0, t_end=0.05)
        assert strategy.temperature(0, 100) == pytest.approx(64.0)
        assert strategy.temperature(99, 100) == pytest.approx(0.05)
        mid = strategy.temperature(50, 100)
        assert 0.05 < mid < 64.0

    def test_anneal_early_behaves_like_random(self):
        strategy = AnnealStrategy(t_start=1e6)
        rng = random.Random(0)
        accepted = sum(strategy.accept(rng, 0.0, 10.0, 0, 100)
                       for _ in range(200))
        assert accepted > 190


class TestPerf:
    def test_latency_perf_normalized(self):
        target = assemble("mulsd xmm1, xmm0\naddsd xmm1, xmm0")
        perf = LatencyPerf(target.latency, scale=20.0)
        assert perf(target) == pytest.approx(20.0)
        half = assemble("addsd xmm1, xmm0")
        assert perf(half) < 20.0

    def test_speedup(self):
        target = assemble("mulsd xmm1, xmm0\nmulsd xmm1, xmm0")
        rewrite = assemble("mulsd xmm1, xmm0")
        assert speedup(target, rewrite) == pytest.approx(2.0)


class TestSearch:
    def make_stoke(self, tiny_target, eta=0.0):
        tests = uniform_testcases(random.Random(0), 16,
                                  {"xmm0": (-50.0, 50.0)})
        return Stoke(tiny_target, tests, ["xmm0"],
                     CostConfig(eta=eta, k=1.0))

    def test_finds_faster_correct_rewrite(self, tiny_target):
        stoke = self.make_stoke(tiny_target)
        result = stoke.optimize(SearchConfig(proposals=4000, seed=3))
        assert result.found_correct
        assert result.best_correct_latency < tiny_target.latency
        assert result.speedup() > 1.0

    def test_best_correct_is_actually_correct(self, tiny_target):
        stoke = self.make_stoke(tiny_target)
        result = stoke.optimize(SearchConfig(proposals=2000, seed=5))
        eq, _ = stoke.cost_fn.eq_fast(result.best_correct)
        assert eq == 0.0

    def test_trace_is_monotone_nonincreasing(self, tiny_target):
        stoke = self.make_stoke(tiny_target)
        result = stoke.optimize(SearchConfig(proposals=1000, seed=1))
        costs = [cost for _, cost in result.trace]
        assert all(a >= b for a, b in zip(costs, costs[1:]))

    def test_deterministic_given_seed(self, tiny_target):
        stoke = self.make_stoke(tiny_target)
        r1 = stoke.optimize(SearchConfig(proposals=500, seed=9))
        stoke2 = self.make_stoke(tiny_target)
        r2 = stoke2.optimize(SearchConfig(proposals=500, seed=9))
        assert r1.best_cost == r2.best_cost
        assert r1.best_correct == r2.best_correct

    def test_extra_slots_allow_growth(self, tiny_target):
        stoke = self.make_stoke(tiny_target)
        result = stoke.search(SearchConfig(proposals=100, seed=2,
                                           extra_slots=4))
        assert len(result.best_program) == len(tiny_target) + 4

    def test_random_strategy_rarely_improves(self, tiny_target):
        stoke = self.make_stoke(tiny_target)
        result = stoke.search(SearchConfig(proposals=2000, seed=4),
                              strategy=RandomStrategy())
        mcmc = self.make_stoke(tiny_target).search(
            SearchConfig(proposals=2000, seed=4), strategy=McmcStrategy())
        # The paper's Figure 10a: random walk does not track correctness.
        assert mcmc.best_cost <= result.best_cost

    def test_stats_populated(self, tiny_target):
        stoke = self.make_stoke(tiny_target)
        result = stoke.optimize(SearchConfig(proposals=300, seed=6))
        assert result.stats.proposals == 300
        assert 0.0 <= result.stats.acceptance_rate <= 1.0
        assert result.stats.proposals_per_second > 0
        assert sum(result.stats.moves_proposed.values()) == 300

    def test_init_empty_synthesis(self, tiny_target):
        tests = uniform_testcases(random.Random(0), 8,
                                  {"xmm0": (-5.0, 5.0)})
        stoke = Stoke(tiny_target, tests, ["xmm0"],
                      CostConfig(eta=0.0, k=0.0))
        result = stoke.search(SearchConfig(proposals=200, seed=0,
                                           init="empty"))
        assert result.best_program is not None

    def test_bad_init_rejected(self, tiny_target):
        stoke = self.make_stoke(tiny_target)
        with pytest.raises(ValueError):
            stoke.search(SearchConfig(proposals=1, init="garbage"))
