"""Tests for the cost function (Equations 9-11, Section 5.2)."""

import math
import random

import pytest

from repro.fp.ieee754 import double_to_bits
from repro.x86.assembler import assemble
from repro.x86.locations import MemLoc, parse_loc
from repro.x86.testcase import TestCase, uniform_testcases

from repro.core.cost import CostConfig, CostFunction, location_ulp_distance


def make_cost(target_asm, eta=0.0, k=1.0, **kwargs):
    target = assemble(target_asm)
    tests = uniform_testcases(random.Random(0), 16, {"xmm0": (-10.0, 10.0)})
    return CostFunction(target, tests, ["xmm0"],
                        CostConfig(eta=eta, k=k, **kwargs))


class TestConfigValidation:
    def test_rejects_bad_reduction(self):
        with pytest.raises(ValueError):
            CostConfig(reduction="mean")

    def test_rejects_bad_compress(self):
        with pytest.raises(ValueError):
            CostConfig(compress="sqrt")

    def test_rejects_negative_eta(self):
        with pytest.raises(ValueError):
            CostConfig(eta=-1.0)


class TestEquivalenceTerm:
    def test_identical_program_costs_only_perf(self):
        cost = make_cost("addsd xmm0, xmm0")
        result = cost(cost.target)
        assert result.eq == 0.0
        assert result.correct
        assert result.perf > 0.0

    def test_semantically_equal_rewrite_is_correct(self):
        cost = make_cost("addsd xmm0, xmm0")
        rewrite = assemble("movq $2.0d, xmm1\nmulsd xmm1, xmm0")
        assert cost(rewrite).correct

    def test_wrong_rewrite_has_positive_eq(self):
        cost = make_cost("addsd xmm0, xmm0")
        wrong = assemble("mulsd xmm0, xmm0")
        assert cost(wrong).eq > 0.0

    def test_eta_floor_forgives_small_errors(self):
        # x*2 via addsd vs a slightly perturbed constant multiply.
        cost_strict = make_cost("addsd xmm0, xmm0", eta=0.0)
        near2 = math.nextafter(2.0, 3.0)
        rewrite = assemble(f"movq $0x{double_to_bits(near2):x}, xmm1\n"
                           "mulsd xmm1, xmm0")
        assert cost_strict(rewrite).eq > 0.0
        cost_loose = make_cost("addsd xmm0, xmm0", eta=16.0)
        assert cost_loose(rewrite).eq == 0.0

    def test_signal_penalty(self):
        cost = make_cost("addsd xmm0, xmm0")
        faulting = assemble("movsd (rax), xmm0")
        result = cost(faulting)
        assert result.signalled
        assert result.eq == cost.config.ws

    def test_k_zero_is_synthesis_mode(self):
        cost = make_cost("addsd xmm0, xmm0", k=0.0)
        result = cost(cost.target)
        assert result.perf == 0.0
        assert result.total == result.eq

    def test_err_fast_missing_live_out_is_diagnosed(self):
        # Outputs from a Runner with mismatched live-outs used to die
        # with a bare KeyError; the message must now name the missing
        # location and the backend so the mismatch is debuggable.
        cost = make_cost("addsd xmm0, xmm0")
        expected = {parse_loc("xmm0"): double_to_bits(2.0)}
        wrong_outputs = {parse_loc("xmm1"): double_to_bits(2.0)}
        with pytest.raises(KeyError) as exc:
            cost.err_fast(wrong_outputs, expected, signalled=False)
        message = str(exc.value)
        assert "xmm0" in message
        assert "jit" in message
        assert "live-outs" in message


class TestReduction:
    def test_max_vs_sum(self):
        target = assemble("addsd xmm0, xmm0")
        tests = uniform_testcases(random.Random(0), 8,
                                  {"xmm0": (-10.0, 10.0)})
        wrong = assemble("mulsd xmm0, xmm0")
        cfg_max = CostConfig(reduction="max", k=0.0)
        cfg_sum = CostConfig(reduction="sum", k=0.0)
        eq_max = CostFunction(target, tests, ["xmm0"], cfg_max)(wrong).eq
        eq_sum = CostFunction(target, tests, ["xmm0"], cfg_sum)(wrong).eq
        assert eq_sum > eq_max  # sum accumulates over test cases

    def test_max_bounded_by_worst_case(self):
        # Section 5.2 rationale: with max-reduction the correctness cost
        # cannot grow with the number of test cases.
        target = assemble("addsd xmm0, xmm0")
        wrong = assemble("mulsd xmm0, xmm0")
        costs = []
        for n in (4, 64):
            tests = uniform_testcases(random.Random(0), n,
                                      {"xmm0": (1.0, 10.0)})
            cfg = CostConfig(reduction="max", k=0.0, compress="none")
            costs.append(CostFunction(target, tests, ["xmm0"], cfg)(wrong).eq)
        assert costs[1] <= costs[0] * 4  # same order of magnitude


class TestCompression:
    def test_log2_compression(self):
        target = assemble("addsd xmm0, xmm0")
        tests = uniform_testcases(random.Random(0), 4, {"xmm0": (1.0, 2.0)})
        wrong = assemble("mulsd xmm0, xmm0")
        raw = CostFunction(target, tests, ["xmm0"],
                           CostConfig(k=0.0, compress="none"))(wrong).eq
        compressed = CostFunction(target, tests, ["xmm0"],
                                  CostConfig(k=0.0, compress="log2"))(wrong).eq
        assert compressed == pytest.approx(math.log2(1.0 + raw))


class TestLocationDistance:
    def test_f64_is_ulps(self):
        a = double_to_bits(1.0)
        b = double_to_bits(math.nextafter(1.0, 2.0))
        assert location_ulp_distance(parse_loc("xmm0"), a, b) == 1.0

    def test_integer_is_hamming(self):
        loc = parse_loc("rax")
        assert location_ulp_distance(loc, 0b1011, 0b0010) == 2.0

    def test_memloc_f32(self):
        loc = MemLoc("seg", 0, "f32")
        assert location_ulp_distance(loc, 0x3F800000, 0x3F800002) == 2.0


class TestMemoryLiveOuts:
    def test_memory_output_compared(self):
        target = assemble("movsd xmm0, (rax)")
        segments = lambda: [  # noqa: E731
            __import__("repro.x86.memory", fromlist=["Segment"]).Segment(
                "out", 0x100, bytes(8))
        ]
        tests = uniform_testcases(random.Random(0), 4,
                                  {"xmm0": (-2.0, 2.0)},
                                  segments_factory=segments)
        tests = [tc.replace("rax", 0x100) for tc in tests]
        out_loc = MemLoc("out", 0, "f64")
        cost = CostFunction(target, tests, [out_loc], CostConfig(k=0.0))
        assert cost(target).eq == 0.0
        wrong = assemble("addsd xmm0, xmm0\nmovsd xmm0, (rax)")
        assert cost(wrong).eq > 0.0


class TestEarlyRejectAndCache:
    def test_early_reject_truncates_consistently(self):
        cost = make_cost("addsd xmm0, xmm0")
        wrong = assemble("mulsd xmm0, xmm0")
        full = cost.cost(wrong)
        truncated = cost.cost(wrong, early_reject_above=0.0)
        assert truncated.total <= full.total

    def test_cache_hits_return_equal_results(self):
        cost = make_cost("addsd xmm0, xmm0")
        rewrite = assemble("movq $2.0d, xmm1\nmulsd xmm1, xmm0")
        first = cost.cost(rewrite)
        second = cost.cost(rewrite)
        assert first == second

    def test_requires_tests(self):
        with pytest.raises(ValueError):
            CostFunction(assemble("addsd xmm0, xmm0"), [], ["xmm0"])

    def test_rejects_nonpositive_cache_size(self):
        target = assemble("addsd xmm0, xmm0")
        tests = uniform_testcases(random.Random(0), 4,
                                  {"xmm0": (-10.0, 10.0)})
        with pytest.raises(ValueError):
            CostFunction(target, tests, ["xmm0"], cache_size=0)


class TestLruCache:
    """The memo is a bounded LRU, not a wipe-everything-at-capacity dict."""

    def _cost(self, cache_size):
        target = assemble("addsd xmm0, xmm0")
        tests = uniform_testcases(random.Random(0), 4,
                                  {"xmm0": (-10.0, 10.0)})
        return CostFunction(target, tests, ["xmm0"],
                            CostConfig(eta=0.0, k=1.0),
                            cache_size=cache_size)

    @staticmethod
    def _program(i):
        return assemble(f"movq $0x{0x3FF0000000000000 + i:x}, xmm1\n"
                        "mulsd xmm1, xmm0")

    def test_cache_never_exceeds_bound(self):
        cost = self._cost(cache_size=4)
        for i in range(12):
            cost.cost(self._program(i))
            assert len(cost._cache) <= 4
        assert len(cost._cache) == 4

    def test_recently_used_entries_survive_eviction(self):
        cost = self._cost(cache_size=2)
        a, b, c = self._program(0), self._program(1), self._program(2)
        cost.cost(a)
        cost.cost(b)
        cost.cost(a)  # refresh a: b becomes least-recently-used
        cost.cost(c)  # evicts b, not a
        assert a in cost._cache and c in cost._cache
        assert b not in cost._cache

    def test_hit_and_miss_counters(self):
        cost = self._cost(cache_size=8)
        a = self._program(0)
        cost.cost(a)
        # The target was evaluated via runner.outputs_for, not cost();
        # the first cost(a) call is the only miss so far.
        assert (cost.cache_hits, cost.cache_misses) == (0, 1)
        cost.cost(a)
        assert (cost.cache_hits, cost.cache_misses) == (1, 1)

    def test_eviction_is_fifo_over_stale_entries(self):
        cost = self._cost(cache_size=3)
        programs = [self._program(i) for i in range(5)]
        for program in programs:
            cost.cost(program)
        # Only the three most recent distinct programs remain.
        assert [p in cost._cache for p in programs] == \
            [False, False, True, True, True]
