"""Tests for the Equation 5 slow-check tier and multi-chain restarts."""

import random

import pytest

from repro.x86.assembler import assemble
from repro.x86.testcase import TestCase, uniform_testcases

from repro.core import (
    CostConfig,
    SearchConfig,
    Stoke,
    counting,
    run_restarts,
    uf_slow_check,
    validation_slow_check,
)
from repro.core.restarts import RestartResult


def _tests():
    return uniform_testcases(random.Random(0), 16, {"xmm0": (-50.0, 50.0)})


class TestSlowChecks:
    def test_uf_slow_check_accepts_provable(self, tiny_target):
        check = uf_slow_check(tiny_target, ["xmm0"])
        # The target is trivially UF-equal to itself.
        assert check(tiny_target)

    def test_uf_slow_check_rejects_different(self, tiny_target):
        check = uf_slow_check(tiny_target, ["xmm0"])
        assert not check(assemble("mulsd xmm0, xmm0"))

    def test_validation_slow_check(self):
        target = assemble("addsd xmm0, xmm0")
        check = validation_slow_check(
            target, ["xmm0"], {"xmm0": (-10.0, 10.0)},
            lambda: TestCase.from_values({"xmm0": 0.0}),
            eta=0.0, max_proposals=800)
        assert check(assemble("addsd xmm0, xmm0"))
        assert not check(assemble("mulsd xmm0, xmm0"))

    def test_counting_wrapper(self, tiny_target):
        check, stats = counting(uf_slow_check(tiny_target, ["xmm0"]))
        check(tiny_target)
        check(assemble("mulsd xmm0, xmm0"))
        assert stats.invocations == 2
        assert stats.accepted == 1
        assert stats.rejected == 1

    def test_search_with_uf_slow_check(self, tiny_target):
        """With the sound UF tier, every accepted best rewrite is
        *verified* (Equation 5/12), not just test-passing."""
        check, stats = counting(uf_slow_check(tiny_target, ["xmm0"]))
        stoke = Stoke(tiny_target, _tests(), ["xmm0"],
                      CostConfig(eta=0.0, k=1.0), slow_check=check)
        result = stoke.optimize(SearchConfig(proposals=2000, seed=3))
        assert stats.invocations > 0
        if result.found_correct:
            final = uf_slow_check(tiny_target, ["xmm0"])(result.best_correct)
            assert final

    def test_slow_check_failures_are_cached(self, tiny_target):
        calls = []

        def failing(program):
            calls.append(program)
            return False

        stoke = Stoke(tiny_target, _tests(), ["xmm0"],
                      CostConfig(eta=0.0, k=1.0), slow_check=failing)
        result = stoke.optimize(SearchConfig(proposals=800, seed=3))
        assert result.best_correct is None
        assert len(calls) == len(set(calls))  # each program checked once

    def test_slow_check_failure_memory_is_bounded(self, tiny_target):
        # A long chain can stream an unbounded number of distinct
        # failing candidates through the slow check; the failure memo
        # must cap out (LRU) rather than grow for the whole run.
        stoke = Stoke(tiny_target, _tests(), ["xmm0"],
                      CostConfig(eta=0.0, k=1.0),
                      slow_check=lambda program: False)
        stoke.SLOW_CHECK_FAILURE_CAP = 8
        programs = [assemble(f"movq ${float(i)}d, xmm0\naddsd xmm0, xmm0")
                    for i in range(50)]
        for program in programs:
            assert not stoke._passes_slow_check(program)
        assert len(stoke._slow_check_failures) <= 8
        # most recent failures are the ones retained
        assert programs[-1] in stoke._slow_check_failures
        assert programs[0] not in stoke._slow_check_failures


class TestRestarts:
    def test_best_of_chains(self, tiny_target):
        stoke = Stoke(tiny_target, _tests(), ["xmm0"],
                      CostConfig(eta=0.0, k=1.0))
        result = run_restarts(stoke, SearchConfig(proposals=800, seed=0),
                              chains=3)
        assert isinstance(result, RestartResult)
        assert len(result.chains) == 3
        assert result.best.best_cost == min(c.best_cost
                                            for c in result.chains) or \
            result.best.found_correct

    def test_best_prefers_correct(self, tiny_target):
        stoke = Stoke(tiny_target, _tests(), ["xmm0"],
                      CostConfig(eta=0.0, k=1.0))
        result = run_restarts(stoke, SearchConfig(proposals=1500, seed=0),
                              chains=2)
        if any(c.found_correct for c in result.chains):
            assert result.best.found_correct
            assert result.best.best_correct_latency == min(
                c.best_correct_latency for c in result.chains
                if c.found_correct)

    def test_reproducible(self, tiny_target):
        stoke = Stoke(tiny_target, _tests(), ["xmm0"],
                      CostConfig(eta=0.0, k=1.0))
        a = run_restarts(stoke, SearchConfig(proposals=400, seed=5), chains=2)
        stoke2 = Stoke(tiny_target, _tests(), ["xmm0"],
                       CostConfig(eta=0.0, k=1.0))
        b = run_restarts(stoke2, SearchConfig(proposals=400, seed=5),
                         chains=2)
        assert a.best.best_cost == b.best.best_cost

    def test_rejects_zero_chains(self, tiny_target):
        stoke = Stoke(tiny_target, _tests(), ["xmm0"], CostConfig())
        with pytest.raises(ValueError):
            run_restarts(stoke, SearchConfig(proposals=1), chains=0)


class TestMultiChainValidation:
    def test_r_hat_near_one_for_agreeing_chains(self):
        from repro.validation import ValidationConfig, Validator

        target = assemble("addsd xmm0, xmm0")
        rewrite = assemble("mulsd xmm0, xmm0")
        validator = Validator(target, rewrite, ["xmm0"],
                              {"xmm0": (-10.0, 10.0)},
                              lambda: TestCase.from_values({"xmm0": 0.0}))
        result = validator.validate_multichain(
            ValidationConfig(max_proposals=600, min_samples=601, seed=0),
            chains=3)
        assert len(result.chains) == 3
        assert result.max_err == max(c.max_err for c in result.chains)
        assert result.r_hat > 0

    def test_gelman_rubin_statistics(self):
        import numpy as np

        from repro.validation import gelman_rubin

        rng = np.random.default_rng(0)
        same = [rng.standard_normal(2000) for _ in range(4)]
        assert gelman_rubin(same) == pytest.approx(1.0, abs=0.05)
        shifted = [rng.standard_normal(2000),
                   rng.standard_normal(2000) + 10.0]
        assert gelman_rubin(shifted) > 2.0

    def test_gelman_rubin_validation(self):
        from repro.validation import gelman_rubin

        with pytest.raises(ValueError):
            gelman_rubin([[1.0] * 100])
        with pytest.raises(ValueError):
            gelman_rubin([[1.0], [2.0]])
