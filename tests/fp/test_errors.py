"""Tests for the naive error functions and their Figure 2 pathologies."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.fp.errors import absolute_error, relative_error


class TestAbsoluteError:
    def test_basic(self):
        assert absolute_error(1.0, 1.5) == 0.5

    def test_diverges_for_large_inputs(self):
        # Figure 2a: the same 1-ULP gap weighs more at larger magnitudes.
        small_gap = absolute_error(1.0, math.nextafter(1.0, 2.0))
        large_gap = absolute_error(1e300, math.nextafter(1e300, math.inf))
        assert large_gap > small_gap * 1e200

    def test_non_finite(self):
        assert absolute_error(math.inf, 1.0) == math.inf
        assert absolute_error(math.nan, 1.0) == math.inf

    @given(st.floats(allow_nan=False, allow_infinity=False,
                     min_value=-1e100, max_value=1e100))
    def test_identity(self, x):
        assert absolute_error(x, x) == 0.0


class TestRelativeError:
    def test_basic(self):
        assert relative_error(2.0, 1.0) == 0.5

    def test_diverges_near_zero(self):
        # Figure 2b: relative error blows up for denormal/zero r1.
        assert relative_error(5e-324, 1e-300) > 1e20
        assert relative_error(0.0, 1.0) == math.inf

    def test_zero_zero(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_well_behaved_for_normals(self):
        # For normal values, 1 ULP is a ~2^-52 relative error.
        x = 1.0
        err = relative_error(x, math.nextafter(x, 2.0))
        assert 2.0 ** -53 < err < 2.0 ** -51

    def test_non_finite(self):
        assert relative_error(1.0, math.inf) == math.inf
        assert relative_error(math.nan, 1.0) == math.inf
