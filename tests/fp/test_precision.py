"""Tests for tunable-precision constants and reduced-precision rounding."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fp.precision import (
    ETA_HALF,
    ETA_SINGLE,
    eta_for_fraction_bits,
    round_to_fraction_bits,
)
from repro.fp.ulp import ulp_distance


class TestEtaConstants:
    def test_paper_values(self):
        assert ETA_SINGLE == 5.0e9
        assert ETA_HALF == 4.0e12
        assert ETA_HALF > ETA_SINGLE

    def test_eta_monotone_in_dropped_bits(self):
        etas = [eta_for_fraction_bits(p) for p in range(53)]
        assert all(a > b for a, b in zip(etas, etas[1:]))

    def test_eta_order_of_magnitude(self):
        # Keeping 23 of 52 bits costs ~2^28 double ULPs.
        assert eta_for_fraction_bits(23) == 2.0 ** 28
        assert eta_for_fraction_bits(52) == 0.5

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            eta_for_fraction_bits(-1)
        with pytest.raises(ValueError):
            eta_for_fraction_bits(53)


class TestRoundToFractionBits:
    def test_full_precision_identity(self):
        assert round_to_fraction_bits(math.pi, 52) == math.pi

    @given(st.floats(min_value=1e-30, max_value=1e30),
           st.booleans())
    def test_single_matches_float32_for_in_range(self, magnitude, negative):
        # For values inside float32's *normal* exponent range, rounding
        # the significand to 23 bits agrees with a float32 round-trip
        # (round_to_fraction_bits deliberately keeps double's exponent
        # range, so the comparison only holds away from under/overflow).
        x = -magnitude if negative else magnitude
        got = round_to_fraction_bits(x, 23)
        want = float(np.float32(x))
        assert got == want

    @given(st.floats(min_value=1e-300, max_value=1e300),
           st.integers(0, 52))
    def test_error_within_eta(self, x, bits):
        rounded = round_to_fraction_bits(x, bits)
        err = ulp_distance(x, rounded)
        assert err <= eta_for_fraction_bits(bits) or bits == 52

    def test_preserves_specials(self):
        assert math.isinf(round_to_fraction_bits(math.inf, 10))
        assert math.isnan(round_to_fraction_bits(math.nan, 10))
        assert round_to_fraction_bits(0.0, 0) == 0.0

    def test_round_to_nearest_even(self):
        # 1 + 2^-1 with 0 fraction bits: ties round to even (-> 2.0? no:
        # 1.5 rounds to 2.0 because significand 1.1 -> 10. (even)).
        assert round_to_fraction_bits(1.5, 0) == 2.0
        # 1.25 with 1 fraction bit: tie between 1.0 and 1.5 -> even is 1.0.
        assert round_to_fraction_bits(1.25, 1) == 1.0

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            round_to_fraction_bits(1.0, 53)
