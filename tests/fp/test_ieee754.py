"""Tests for IEEE-754 formats, conversions, and classification (Figure 1)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fp.ieee754 import (
    DOUBLE,
    HALF,
    SINGLE,
    FloatClass,
    bits_to_double,
    bits_to_half,
    bits_to_single,
    classify_bits,
    compose_bits,
    decompose_bits,
    double_to_bits,
    half_to_bits,
    single_to_bits,
)


class TestFormats:
    def test_double_layout(self):
        assert DOUBLE.width == 64
        assert DOUBLE.bias == 1023
        assert DOUBLE.max_exponent_field == 2047
        assert DOUBLE.fraction_bits == 52

    def test_single_layout(self):
        assert SINGLE.width == 32
        assert SINGLE.bias == 127
        assert SINGLE.fraction_bits == 23

    def test_half_layout(self):
        assert HALF.width == 16
        assert HALF.bias == 15
        assert HALF.fraction_bits == 10

    def test_masks(self):
        assert DOUBLE.sign_mask == 1 << 63
        assert DOUBLE.fraction_mask == (1 << 52) - 1
        assert SINGLE.mask == 0xFFFFFFFF


class TestConversions:
    def test_one_point_five(self):
        assert double_to_bits(1.5) == 0x3FF8000000000000

    def test_negative_zero(self):
        assert double_to_bits(-0.0) == 0x8000000000000000
        assert math.copysign(1.0, bits_to_double(1 << 63)) == -1.0

    def test_infinity(self):
        assert double_to_bits(math.inf) == 0x7FF0000000000000
        assert bits_to_double(0xFFF0000000000000) == -math.inf

    def test_single_rounds(self):
        # 0.1 is not single-representable; conversion must round.
        assert bits_to_single(single_to_bits(0.1)) != 0.1
        assert abs(bits_to_single(single_to_bits(0.1)) - 0.1) < 1e-8

    def test_half_roundtrip_exact_values(self):
        for value in (0.0, 1.0, -2.0, 0.5, 65504.0):
            assert bits_to_half(half_to_bits(value)) == value

    @given(st.integers(0, (1 << 64) - 1))
    def test_double_bits_roundtrip(self, bits):
        value = bits_to_double(bits)
        if math.isnan(value):
            back = double_to_bits(value)
            assert classify_bits(back) is FloatClass.NAN
        else:
            assert double_to_bits(value) == bits

    @given(st.floats(allow_nan=False))
    def test_double_value_roundtrip(self, value):
        assert bits_to_double(double_to_bits(value)) == value or (
            value == 0.0)


class TestDecompose:
    def test_decompose_one(self):
        sign, exponent, fraction = decompose_bits(double_to_bits(1.0))
        assert (sign, exponent, fraction) == (0, 1023, 0)

    def test_compose_inverse(self):
        bits = double_to_bits(-3.75)
        assert compose_bits(*decompose_bits(bits)) == bits

    @given(st.integers(0, (1 << 64) - 1))
    def test_compose_decompose_roundtrip(self, bits):
        assert compose_bits(*decompose_bits(bits)) == bits

    def test_compose_validates(self):
        with pytest.raises(ValueError):
            compose_bits(2, 0, 0)
        with pytest.raises(ValueError):
            compose_bits(0, 2048, 0)
        with pytest.raises(ValueError):
            compose_bits(0, 0, 1 << 52)


class TestClassify:
    def test_figure1_taxonomy(self):
        assert classify_bits(0) is FloatClass.ZERO
        assert classify_bits(1 << 63) is FloatClass.ZERO
        assert classify_bits(1) is FloatClass.DENORMAL
        assert classify_bits(double_to_bits(1.0)) is FloatClass.NORMAL
        assert classify_bits(double_to_bits(math.inf)) is FloatClass.INFINITY
        assert classify_bits(double_to_bits(math.nan)) is FloatClass.NAN

    def test_single_classification(self):
        assert classify_bits(0x7F800000, SINGLE) is FloatClass.INFINITY
        assert classify_bits(0x7FC00000, SINGLE) is FloatClass.NAN
        assert classify_bits(0x00000001, SINGLE) is FloatClass.DENORMAL

    def test_largest_denormal(self):
        assert classify_bits(DOUBLE.fraction_mask) is FloatClass.DENORMAL

    def test_smallest_normal(self):
        assert classify_bits(1 << 52) is FloatClass.NORMAL
