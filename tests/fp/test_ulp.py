"""Tests for ULP distances (Equations 7 and 17, Figure 3)."""

import math
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fp.ieee754 import DOUBLE, SINGLE, double_to_bits
from repro.fp.ulp import (
    ordered_from_bits,
    ulp_distance,
    ulp_distance_bits,
    ulp_distance_single,
    ulp_from_real,
)

finite_doubles = st.floats(allow_nan=False, allow_infinity=False)


class TestOrderedMapping:
    def test_zero_signs_collapse(self):
        # +0 and -0 map to the same ordinal (ULP' counts values strictly
        # between, and nothing separates the two zeros).
        assert ordered_from_bits(double_to_bits(0.0)) == \
            ordered_from_bits(double_to_bits(-0.0))

    def test_ascending_over_samples(self):
        values = [-math.inf, -1e300, -1.0, -1e-300, -5e-324, 0.0,
                  5e-324, 1e-300, 1.0, 1e300, math.inf]
        ordinals = [ordered_from_bits(double_to_bits(v)) for v in values]
        assert ordinals == sorted(ordinals)
        assert len(set(ordinals[1:])) == len(ordinals) - 1

    @given(finite_doubles)
    def test_next_representable_is_adjacent(self, x):
        successor = math.nextafter(x, math.inf)
        if successor == x:
            return
        distance = ulp_distance(x, successor)
        # +0/-0 share an ordinal, so stepping across zero costs 1, not 2.
        assert distance == 1

    def test_single_format_mapping(self):
        assert ulp_distance_bits(0x3F800000, 0x3F800001, SINGLE) == 1


class TestUlpDistance:
    @given(finite_doubles)
    def test_identity(self, x):
        assert ulp_distance(x, x) == 0

    @given(finite_doubles, finite_doubles)
    def test_symmetry(self, x, y):
        assert ulp_distance(x, y) == ulp_distance(y, x)

    @given(finite_doubles, finite_doubles, finite_doubles)
    def test_additive_along_order(self, a, b, c):
        lo, mid, hi = sorted((a, b, c))
        assert ulp_distance(lo, hi) == \
            ulp_distance(lo, mid) + ulp_distance(mid, hi)

    def test_handles_infinity(self):
        big = 1.7976931348623157e308
        assert ulp_distance(big, math.inf) == 1

    def test_extreme_range_value(self):
        # About 2^63 values separate the extremes - the "number of
        # representable double-precision values" scale of Figure 4.
        total = ulp_distance(-math.inf, math.inf)
        assert 1.8e19 < total < 1.9e19

    def test_sign_crossing(self):
        assert ulp_distance(-5e-324, 5e-324) == 2

    def test_single_precision_distance(self):
        assert ulp_distance_single(1.0, 1.0000001) == 1


class TestUlpFromReal:
    def test_exact_value_is_zero(self):
        assert ulp_from_real(1.5, Fraction(3, 2)) == 0

    def test_half_ulp_for_rounded(self):
        # 0.1 rounds to the nearest double; error must be <= 1/2 ULP (Eq 8).
        err = ulp_from_real(0.1, Fraction(1, 10))
        assert 0 < err <= Fraction(1, 2)

    @given(st.floats(min_value=1e-300, max_value=1e300))
    def test_midpoint_is_half_ulp(self, x):
        # The real midpoint between adjacent doubles is exactly 1/2 ULP
        # from each endpoint (the Equation 8 bound is tight).
        succ = math.nextafter(x, math.inf)
        midpoint = (Fraction(x) + Fraction(succ)) / 2
        err_low = ulp_from_real(x, midpoint)
        assert err_low == Fraction(1, 2)

    def test_one_ulp_gap(self):
        x = 1.0
        succ = math.nextafter(x, 2.0)
        assert ulp_from_real(x, Fraction(succ)) == 1

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            ulp_from_real(math.inf, 1)
        with pytest.raises(ValueError):
            ulp_from_real(math.nan, 1)

    def test_denormal_ulp_size(self):
        # In the denormal range the ULP is 2^-1074.
        err = ulp_from_real(5e-324, 0)
        assert err == 1
